//! The daemon's wire protocol: length-prefixed JSON frames, typed
//! requests/responses, and canonical spec hashing.
//!
//! # Framing
//!
//! Every message is one *frame*: a little-endian `u32` byte length followed
//! by that many bytes of protocol JSON ([`crate::json`]). The length prefix
//! is checked against a configurable cap **before** the payload is read, so
//! an oversized request is rejected with a typed error after reading eight
//! bytes, not after buffering an attacker-chosen allocation.
//!
//! # Requests
//!
//! ```json
//! {"id":"r1","op":"synth","pla":".i 2\n.o 1\n11 1\n.e\n",
//!  "deadline_ms":2000,"step_limit":100000,"max_in":12,"max_out":10}
//! {"id":"r2","op":"synth","registry":"1-digit decimal adder"}
//! {"id":"s","op":"stats"}
//! {"id":"q","op":"shutdown","mode":"drain"}
//! ```
//!
//! # Responses
//!
//! ```json
//! {"id":"r1","status":"ok","spec_hash":"…16 hex…","cached":false,
//!  "resumed":false,"result":{"stats":{…},"cascade":"…","verilog":"…",
//!  "degradations":[]}}
//! {"id":"r3","status":"error","error":{"code":"queue_full","message":"…"}}
//! ```
//!
//! The `result` object is rendered deterministically, which is what lets
//! the chaos harness byte-compare a crash-recovered response against a
//! locally recomputed one.

use crate::json::{self, Json};
use bddcf_bdd::snapshot::fnv1a64;
use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (1 MiB) — far above any
/// legitimate request, far below a memory-exhaustion attempt.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Writes one frame: `u32` little-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// How reading a frame can fail.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (or timed out).
    Io(io::Error),
    /// The length prefix exceeds the configured cap; the payload was not
    /// read and the connection can no longer be framed reliably.
    Oversized {
        /// The advertised payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame, or `Ok(None)` on a clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Where a synthesis request's function comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// An inline PLA text.
    Pla(String),
    /// A registry benchmark, matched by exact label (see
    /// `bddcf_funcs::registry`).
    Registry(String),
}

/// The canonical description of one synthesis job. Two requests with equal
/// specs are the same computation — the cache, the circuit breaker, and
/// the spool all key on [`SynthSpec::hash`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthSpec {
    /// The function to synthesize.
    pub source: Source,
    /// Sifting passes before reduction (default 1).
    pub sift: usize,
    /// Fixpoint iteration cap (default 4).
    pub max_iter: usize,
    /// Maximum LUT cell inputs (default 12).
    pub max_in: usize,
    /// Maximum LUT cell outputs (default 10).
    pub max_out: usize,
    /// Per-request node quota; `None` uses the server default shard.
    pub node_limit: Option<usize>,
    /// Per-request step quota (deterministic degradation knob).
    pub step_limit: Option<u64>,
}

impl SynthSpec {
    /// A spec with default knobs for `source`.
    pub fn new(source: Source) -> Self {
        SynthSpec {
            source,
            sift: 1,
            max_iter: 4,
            max_in: 12,
            max_out: 10,
            node_limit: None,
            step_limit: None,
        }
    }

    /// The canonical JSON of the spec — the hashing domain. Field order is
    /// fixed; optional fields render as `null` so absence is unambiguous.
    pub fn canonical(&self) -> Json {
        let (kind, text) = match &self.source {
            Source::Pla(text) => ("pla", text.clone()),
            Source::Registry(label) => ("registry", label.clone()),
        };
        Json::Obj(vec![
            ("kind".into(), Json::Str(kind.into())),
            ("text".into(), Json::Str(text)),
            ("sift".into(), Json::Int(self.sift as i64)),
            ("max_iter".into(), Json::Int(self.max_iter as i64)),
            ("max_in".into(), Json::Int(self.max_in as i64)),
            ("max_out".into(), Json::Int(self.max_out as i64)),
            (
                "node_limit".into(),
                self.node_limit.map_or(Json::Null, |n| Json::Int(n as i64)),
            ),
            (
                "step_limit".into(),
                self.step_limit
                    .map_or(Json::Null, |n| Json::Int(n.min(i64::MAX as u64) as i64)),
            ),
        ])
    }

    /// FNV-1a/64 over the canonical rendering — the spec's identity.
    pub fn hash(&self) -> u64 {
        fnv1a64(self.canonical().render().as_bytes())
    }

    /// The hash as fixed-width lowercase hex (protocol/spool currency).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash())
    }
}

/// Graceful-shutdown flavors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admitting, finish every queued and in-flight job, then exit.
    Drain,
    /// Stop admitting, cancel in-flight jobs at their next checkpoint
    /// boundary (long jobs park a resumable checkpoint in the spool), and
    /// exit; queued jobs stay spooled for the next start.
    Checkpoint,
}

/// What a parsed request asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestBody {
    /// Run one synthesis job.
    Synth {
        /// The job description.
        spec: SynthSpec,
        /// Relative deadline in milliseconds (`None` = no deadline).
        deadline_ms: Option<u64>,
        /// Checkpoint the reduction into the spool (resumable after a
        /// crash or a `Checkpoint`-mode shutdown).
        checkpoint: bool,
    },
    /// Server counters.
    Stats,
    /// Begin shutdown.
    Shutdown(ShutdownMode),
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The operation.
    pub body: RequestBody,
}

/// Why a request frame was rejected before reaching the queue.
#[derive(Debug)]
pub struct ParseError {
    /// Id salvaged from the frame, when one parsed (echoed back so the
    /// client can correlate the rejection).
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

fn field_usize(obj: &Json, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn field_opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

impl Request {
    /// Parses a request frame. On failure the salvaged id (if any) rides
    /// along so the error response still correlates.
    pub fn from_bytes(bytes: &[u8]) -> Result<Request, ParseError> {
        let value = json::parse(bytes).map_err(|e| ParseError {
            id: None,
            message: e.to_string(),
        })?;
        let id = value.get("id").and_then(Json::as_str).map(str::to_owned);
        let fail = |message: String| ParseError {
            id: id.clone(),
            message,
        };
        let id_ok = id
            .clone()
            .ok_or_else(|| fail("missing string `id`".into()))?;
        if id_ok.is_empty() || id_ok.len() > 128 {
            return Err(fail("`id` must be 1..=128 characters".into()));
        }
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `op`".into()))?;
        let body = match op {
            "synth" => {
                let source = match (
                    value.get("pla").and_then(Json::as_str),
                    value.get("registry").and_then(Json::as_str),
                ) {
                    (Some(text), None) => Source::Pla(text.to_owned()),
                    (None, Some(label)) => Source::Registry(label.to_owned()),
                    _ => {
                        return Err(fail(
                            "synth needs exactly one of string `pla` or `registry`".into(),
                        ))
                    }
                };
                let mut spec = SynthSpec::new(source);
                spec.sift = field_usize(&value, "sift", spec.sift).map_err(&fail)?;
                spec.max_iter = field_usize(&value, "max_iter", spec.max_iter).map_err(&fail)?;
                spec.max_in = field_usize(&value, "max_in", spec.max_in).map_err(&fail)?;
                spec.max_out = field_usize(&value, "max_out", spec.max_out).map_err(&fail)?;
                if spec.max_in == 0 || spec.max_out == 0 {
                    return Err(fail("`max_in` and `max_out` must be positive".into()));
                }
                spec.node_limit = field_opt_u64(&value, "node_limit")
                    .map_err(&fail)?
                    .map(|n| n as usize);
                spec.step_limit = field_opt_u64(&value, "step_limit").map_err(&fail)?;
                RequestBody::Synth {
                    spec,
                    deadline_ms: field_opt_u64(&value, "deadline_ms").map_err(&fail)?,
                    checkpoint: value
                        .get("checkpoint")
                        .map_or(Ok(false), |v| {
                            v.as_bool().ok_or("`checkpoint` must be a boolean".into())
                        })
                        .map_err(|e: String| fail(e))?,
                }
            }
            "stats" => RequestBody::Stats,
            "shutdown" => {
                let mode = match value.get("mode").and_then(Json::as_str) {
                    None | Some("drain") => ShutdownMode::Drain,
                    Some("checkpoint") => ShutdownMode::Checkpoint,
                    Some(other) => {
                        return Err(fail(format!(
                            "unknown shutdown mode {other:?} (drain | checkpoint)"
                        )))
                    }
                };
                RequestBody::Shutdown(mode)
            }
            other => return Err(fail(format!("unknown op {other:?}"))),
        };
        Ok(Request { id: id_ok, body })
    }

    /// Renders the request to a frame payload (client side).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut fields = vec![("id".to_string(), Json::Str(self.id.clone()))];
        match &self.body {
            RequestBody::Synth {
                spec,
                deadline_ms,
                checkpoint,
            } => {
                fields.push(("op".into(), Json::Str("synth".into())));
                match &spec.source {
                    Source::Pla(text) => fields.push(("pla".into(), Json::Str(text.clone()))),
                    Source::Registry(label) => {
                        fields.push(("registry".into(), Json::Str(label.clone())))
                    }
                }
                fields.push(("sift".into(), Json::Int(spec.sift as i64)));
                fields.push(("max_iter".into(), Json::Int(spec.max_iter as i64)));
                fields.push(("max_in".into(), Json::Int(spec.max_in as i64)));
                fields.push(("max_out".into(), Json::Int(spec.max_out as i64)));
                if let Some(n) = spec.node_limit {
                    fields.push(("node_limit".into(), Json::Int(n as i64)));
                }
                if let Some(n) = spec.step_limit {
                    fields.push((
                        "step_limit".into(),
                        Json::Int(n.min(i64::MAX as u64) as i64),
                    ));
                }
                if let Some(ms) = deadline_ms {
                    fields.push((
                        "deadline_ms".into(),
                        Json::Int((*ms).min(i64::MAX as u64) as i64),
                    ));
                }
                if *checkpoint {
                    fields.push(("checkpoint".into(), Json::Bool(true)));
                }
            }
            RequestBody::Stats => fields.push(("op".into(), Json::Str("stats".into()))),
            RequestBody::Shutdown(mode) => {
                fields.push(("op".into(), Json::Str("shutdown".into())));
                let mode = match mode {
                    ShutdownMode::Drain => "drain",
                    ShutdownMode::Checkpoint => "checkpoint",
                };
                fields.push(("mode".into(), Json::Str(mode.into())));
            }
        }
        Json::Obj(fields).render().into_bytes()
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Typed rejection/failure classes, each with distinct client guidance:
/// `queue_full`/`overloaded`/`draining` are retryable elsewhere-or-later,
/// `circuit_open` means back off this spec, the rest are terminal for the
/// request as sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a well-formed request.
    Malformed,
    /// The frame exceeded the size cap.
    Oversized,
    /// The bounded request queue is full.
    QueueFull,
    /// Admitting the job would exceed the global in-flight node budget.
    Overloaded,
    /// The per-spec circuit breaker is open after repeated failures.
    CircuitOpen,
    /// The server is shutting down and no longer admits work.
    Draining,
    /// The request's deadline passed (in queue or mid-run).
    Deadline,
    /// A node/step quota made the job fail outright (degradations that
    /// still complete report `status:"degraded"` instead).
    Budget,
    /// The job panicked; its manager was poisoned and discarded.
    Panicked,
    /// The function cannot be synthesized under the cell constraints.
    Infeasible,
    /// An internal error (spool I/O, checkpoint corruption, …).
    Internal,
}

impl ErrorCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::CircuitOpen => "circuit_open",
            ErrorCode::Draining => "draining",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Budget => "budget",
            ErrorCode::Panicked => "panicked",
            ErrorCode::Infeasible => "infeasible",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire token.
    pub fn parse_token(token: &str) -> Option<ErrorCode> {
        Some(match token {
            "malformed" => ErrorCode::Malformed,
            "oversized" => ErrorCode::Oversized,
            "queue_full" => ErrorCode::QueueFull,
            "overloaded" => ErrorCode::Overloaded,
            "circuit_open" => ErrorCode::CircuitOpen,
            "draining" => ErrorCode::Draining,
            "deadline" => ErrorCode::Deadline,
            "budget" => ErrorCode::Budget,
            "panicked" => ErrorCode::Panicked,
            "infeasible" => ErrorCode::Infeasible,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Should a client retry the same request later? (`circuit_open` is
    /// deliberately *not* retryable: the spec itself keeps failing.)
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull | ErrorCode::Overloaded | ErrorCode::Draining
        )
    }
}

/// Summary numbers of a synthesized cascade plus the reduction trajectory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthStats {
    /// LUT cells in the cascade.
    pub cells: usize,
    /// Total LUT outputs.
    pub lut_outputs: usize,
    /// Total memory bits.
    pub memory_bits: u64,
    /// Widest inter-cell rail bus.
    pub max_rails: usize,
    /// Final χ width after reduction. (The *initial* width is deliberately
    /// absent: a checkpoint-resumed run cannot know it, and the response
    /// must be byte-identical whether or not the daemon was restarted.)
    pub width: usize,
    /// Final χ node count after reduction.
    pub nodes: usize,
}

/// The deterministic payload of a completed job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthResult {
    /// Cascade summary numbers.
    pub stats: SynthStats,
    /// The `.cas` cell-table artifact.
    pub cascade: String,
    /// The Verilog artifact (module named `spec_<hash16>`).
    pub verilog: String,
    /// Rendered degradation events (empty = fully reduced under budget).
    pub degradations: Vec<String>,
}

impl SynthResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "stats".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::Int(self.stats.cells as i64)),
                    (
                        "lut_outputs".into(),
                        Json::Int(self.stats.lut_outputs as i64),
                    ),
                    (
                        "memory_bits".into(),
                        Json::Int(self.stats.memory_bits.min(i64::MAX as u64) as i64),
                    ),
                    ("max_rails".into(), Json::Int(self.stats.max_rails as i64)),
                    ("width".into(), Json::Int(self.stats.width as i64)),
                    ("nodes".into(), Json::Int(self.stats.nodes as i64)),
                ]),
            ),
            ("cascade".into(), Json::Str(self.cascade.clone())),
            ("verilog".into(), Json::Str(self.verilog.clone())),
            (
                "degradations".into(),
                Json::Arr(
                    self.degradations
                        .iter()
                        .map(|d| Json::Str(d.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Option<SynthResult> {
        let stats = value.get("stats")?;
        let g = |k: &str| stats.get(k).and_then(Json::as_u64);
        Some(SynthResult {
            stats: SynthStats {
                cells: g("cells")? as usize,
                lut_outputs: g("lut_outputs")? as usize,
                memory_bits: g("memory_bits")?,
                max_rails: g("max_rails")? as usize,
                width: g("width")? as usize,
                nodes: g("nodes")? as usize,
            },
            cascade: value.get("cascade")?.as_str()?.to_owned(),
            verilog: value.get("verilog")?.as_str()?.to_owned(),
            degradations: value
                .get("degradations")?
                .as_arr()?
                .iter()
                .map(|d| d.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Overall request verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Completed with a clean degradation report.
    Ok,
    /// Completed, but budget pressure downgraded some reduction steps;
    /// the artifacts are valid but less reduced ([`SynthResult::degradations`]).
    Degraded,
    /// Not completed; see the error code.
    Error,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Degraded => "degraded",
            Status::Error => "error",
        }
    }
}

/// One response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id (empty when the id could not be parsed).
    pub id: String,
    /// Verdict.
    pub status: Status,
    /// Spec identity, when the request parsed far enough to have one.
    pub spec_hash: Option<String>,
    /// Error code and message (`status == Error` only).
    pub error: Option<(ErrorCode, String)>,
    /// The job payload (`status != Error` for synth requests).
    pub result: Option<SynthResult>,
    /// Served from the validated response cache.
    pub cached: bool,
    /// Completed by a restarted daemon from the spool (checkpoint resume
    /// or queued-request recovery).
    pub resumed: bool,
    /// The daemon could not durably record this request or its outcome
    /// (ENOSPC/EIO on the spool or checkpoint path). The result itself is
    /// correct, but it is **not** crash-durable and was not cached; a
    /// client that needs durability should retry once storage recovers
    /// (watch `storage_degraded` in `stats`).
    pub storage_degraded: bool,
}

impl Response {
    /// An error response.
    pub fn failure(id: impl Into<String>, code: ErrorCode, message: impl Into<String>) -> Self {
        Response {
            id: id.into(),
            status: Status::Error,
            spec_hash: None,
            error: Some((code, message.into())),
            result: None,
            cached: false,
            resumed: false,
            storage_degraded: false,
        }
    }

    /// Renders the full wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("status".into(), Json::Str(self.status.as_str().into())),
        ];
        if let Some(hash) = &self.spec_hash {
            fields.push(("spec_hash".into(), Json::Str(hash.clone())));
        }
        if let Some((code, message)) = &self.error {
            fields.push((
                "error".into(),
                Json::Obj(vec![
                    ("code".into(), Json::Str(code.as_str().into())),
                    ("message".into(), Json::Str(message.clone())),
                ]),
            ));
        }
        fields.push(("cached".into(), Json::Bool(self.cached)));
        fields.push(("resumed".into(), Json::Bool(self.resumed)));
        if self.storage_degraded {
            // Emitted only when set, so pre-existing clients see unchanged
            // wire bytes on the healthy path.
            fields.push(("storage_degraded".into(), Json::Bool(true)));
        }
        if let Some(result) = &self.result {
            fields.push(("result".into(), result.to_json()));
        }
        Json::Obj(fields).render().into_bytes()
    }

    /// The *deterministic* portion of the response — everything except the
    /// delivery-path flags (`cached`, `resumed`, `storage_degraded`), which
    /// legitimately differ between a first run, a cache hit, and a
    /// crash-recovered replay. The chaos harness byte-compares these.
    pub fn artifact_bytes(&self) -> Vec<u8> {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("status".into(), Json::Str(self.status.as_str().into())),
        ];
        if let Some(hash) = &self.spec_hash {
            fields.push(("spec_hash".into(), Json::Str(hash.clone())));
        }
        if let Some((code, _)) = &self.error {
            fields.push(("error_code".into(), Json::Str(code.as_str().into())));
        }
        if let Some(result) = &self.result {
            fields.push(("result".into(), result.to_json()));
        }
        Json::Obj(fields).render().into_bytes()
    }

    /// Parses a response frame (client side).
    pub fn from_bytes(bytes: &[u8]) -> Result<Response, String> {
        let value = json::parse(bytes).map_err(|e| e.to_string())?;
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .ok_or("response missing `id`")?
            .to_owned();
        let status = match value.get("status").and_then(Json::as_str) {
            Some("ok") => Status::Ok,
            Some("degraded") => Status::Degraded,
            Some("error") => Status::Error,
            other => return Err(format!("bad response status {other:?}")),
        };
        let error = match value.get("error") {
            None => None,
            Some(e) => {
                let code = e
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse_token)
                    .ok_or("bad error code")?;
                let message = e
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned();
                Some((code, message))
            }
        };
        let result = match value.get("result") {
            None => None,
            Some(r) => Some(SynthResult::from_json(r).ok_or("bad result object")?),
        };
        Ok(Response {
            id,
            status,
            spec_hash: value
                .get("spec_hash")
                .and_then(Json::as_str)
                .map(str::to_owned),
            error,
            result,
            cached: value.get("cached").and_then(Json::as_bool).unwrap_or(false),
            resumed: value
                .get("resumed")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            storage_degraded: value
                .get("storage_degraded")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 64).expect("read").as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut r, 64).expect("read").as_deref(),
            Some(&b""[..])
        );
        assert!(read_frame(&mut r, 64).expect("eof").is_none());
    }

    #[test]
    fn oversized_frames_reject_before_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1_000_000u32).to_le_bytes());
        // Deliberately no payload bytes: the cap check must fire first.
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Oversized {
                len: 1_000_000,
                max: 1024
            })
        ));
    }

    #[test]
    fn truncated_prefix_is_an_error_not_eof() {
        let mut r = &[0x05u8, 0x00][..];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Io(_))));
    }

    #[test]
    fn requests_round_trip_and_hash_stably() {
        let req = Request {
            id: "r-1".into(),
            body: RequestBody::Synth {
                spec: SynthSpec {
                    source: Source::Pla(".i 1\n.o 1\n1 1\n.e\n".into()),
                    sift: 2,
                    max_iter: 3,
                    max_in: 8,
                    max_out: 6,
                    node_limit: Some(5000),
                    step_limit: None,
                },
                deadline_ms: Some(250),
                checkpoint: true,
            },
        };
        let parsed = Request::from_bytes(&req.to_bytes()).expect("parse");
        assert_eq!(parsed, req);
        let RequestBody::Synth { spec, .. } = &parsed.body else {
            panic!("synth body");
        };
        // The hash depends only on the spec, not on id/deadline.
        assert_eq!(spec.hash_hex().len(), 16);
        let mut other = spec.clone();
        assert_eq!(other.hash(), spec.hash());
        other.step_limit = Some(9);
        assert_ne!(other.hash(), spec.hash());
    }

    #[test]
    fn malformed_requests_salvage_the_id() {
        let err = Request::from_bytes(b"{\"id\":\"x\",\"op\":\"nope\"}").expect_err("reject");
        assert_eq!(err.id.as_deref(), Some("x"));
        let err = Request::from_bytes(b"not json").expect_err("reject");
        assert_eq!(err.id, None);
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response {
            id: "r-1".into(),
            status: Status::Degraded,
            spec_hash: Some("00ff00ff00ff00ff".into()),
            error: None,
            result: Some(SynthResult {
                stats: SynthStats {
                    cells: 2,
                    lut_outputs: 3,
                    memory_bits: 96,
                    max_rails: 2,
                    width: 3,
                    nodes: 22,
                },
                cascade: "cells 2\n".into(),
                verilog: "module spec_x;\nendmodule\n".into(),
                degradations: vec!["alg33: skipped level 2".into()],
            }),
            cached: true,
            resumed: false,
            storage_degraded: false,
        };
        let parsed = Response::from_bytes(&resp.to_bytes()).expect("parse");
        assert_eq!(parsed, resp);
        // artifact_bytes ignores the delivery-path flags.
        let mut replay = resp.clone();
        replay.cached = false;
        replay.resumed = true;
        replay.storage_degraded = true;
        assert_eq!(replay.artifact_bytes(), resp.artifact_bytes());
        assert_ne!(replay.to_bytes(), resp.to_bytes());
        // storage_degraded itself round trips, and its absence on the
        // healthy path keeps pre-existing wire bytes unchanged.
        let parsed = Response::from_bytes(&replay.to_bytes()).expect("parse");
        assert!(parsed.storage_degraded);
        assert!(!String::from_utf8_lossy(&resp.to_bytes()).contains("storage_degraded"));
    }

    #[test]
    fn shutdown_and_stats_parse() {
        let req =
            Request::from_bytes(b"{\"id\":\"q\",\"op\":\"shutdown\",\"mode\":\"checkpoint\"}")
                .expect("parse");
        assert_eq!(req.body, RequestBody::Shutdown(ShutdownMode::Checkpoint));
        let req = Request::from_bytes(b"{\"id\":\"s\",\"op\":\"stats\"}").expect("parse");
        assert_eq!(req.body, RequestBody::Stats);
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::QueueFull,
            ErrorCode::Overloaded,
            ErrorCode::CircuitOpen,
            ErrorCode::Draining,
            ErrorCode::Deadline,
            ErrorCode::Budget,
            ErrorCode::Panicked,
            ErrorCode::Infeasible,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse_token(code.as_str()), Some(code));
        }
        assert!(ErrorCode::QueueFull.is_retryable());
        assert!(!ErrorCode::CircuitOpen.is_retryable());
        assert!(!ErrorCode::Budget.is_retryable());
    }
}
