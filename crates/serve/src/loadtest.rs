//! The chaos/load harness (`bddcf loadtest`).
//!
//! Drives a daemon with a seeded mix of hundreds of requests — valid PLA
//! and registry specs (with duplicates, so the cache and spool replay are
//! exercised), step-limited specs (deterministic degradation), zero
//! deadlines (queue shedding), the `"panic probe"` spec (quarantine and
//! circuit breaker), malformed JSON, and oversized frames — from several
//! concurrent client threads with seeded retry + exponential backoff.
//! Mid-batch it kills the daemon and restarts it on the same spool, then
//! finishes with a drain shutdown and audits the aftermath:
//!
//! * **No accepted request lost** — every spool entry with an acceptance
//!   record has a completion record.
//! * **Byte-identical artifacts** — every successful response equals a
//!   locally recomputed one on [`Response::artifact_bytes`], regardless of
//!   whether it came from a worker, the cache, the spool, or a
//!   crash-recovered daemon.
//! * **Audited artifacts** — every persisted success passes
//!   [`bddcf_check::audit_artifact_text`] against a spec χ rebuilt from
//!   its own acceptance record.
//!
//! Two kill modes: with a server *binary* the daemon is a child process
//! killed with `SIGKILL`; in-process (no binary available, e.g. crate
//! tests) the kill is a `checkpoint`-mode shutdown plus restart, which
//! exercises the same park/recover path without process isolation.

use crate::job::execute;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, RequestBody, Response, ShutdownMode, Source,
    Status, SynthResult, SynthSpec,
};
use crate::server::{parse_control_status, Server, ServerConfig};
use bddcf_bdd::Budget;
use bddcf_check::audit_artifact_text;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Harness configuration.
#[derive(Clone)]
pub struct LoadTestConfig {
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Seed for the request mix, retry jitter, and kill timing.
    pub seed: u64,
    /// Kill the daemon mid-batch and restart it on the same spool.
    pub kill: bool,
    /// Spool directory (shared across daemon restarts).
    pub spool_dir: PathBuf,
    /// Daemon binary (spawned as `<bin> serve …` and `SIGKILL`ed); `None`
    /// runs the daemon in-process and "kills" via checkpoint shutdown.
    pub server_bin: Option<PathBuf>,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon queue capacity.
    pub queue_capacity: usize,
}

impl Default for LoadTestConfig {
    fn default() -> Self {
        LoadTestConfig {
            requests: 200,
            clients: 4,
            seed: 0xbddc_f5e2,
            kill: true,
            spool_dir: PathBuf::from("loadtest-spool"),
            server_bin: None,
            workers: 2,
            queue_capacity: 8,
        }
    }
}

/// What the harness observed; [`LoadTestReport::passed`] is the verdict.
#[derive(Clone, Debug, Default)]
pub struct LoadTestReport {
    /// Requests sent (including protocol-abuse ones).
    pub sent: u64,
    /// Clean completions.
    pub ok: u64,
    /// Budget-degraded completions.
    pub degraded: u64,
    /// Completions served from the validated cache.
    pub cached: u64,
    /// Completions served by a restarted daemon (spool replay/resume).
    pub resumed: u64,
    /// Typed retryable rejections absorbed by backoff.
    pub retries: u64,
    /// Deadline sheds (expected for the zero-deadline class).
    pub deadline: u64,
    /// Panic / circuit-breaker rejections (expected for the probe class).
    pub panicked: u64,
    /// Malformed frames correctly rejected.
    pub malformed_rejected: u64,
    /// Oversized frames correctly rejected.
    pub oversized_rejected: u64,
    /// Daemon kills + restarts performed.
    pub kills: u64,
    /// Requests whose clients exhausted retries (harness failure).
    pub gave_up: u64,
    /// Responses that violated the protocol contract (harness failure).
    pub protocol_errors: u64,
    /// Successful responses that did not byte-match the locally
    /// recomputed artifact (harness failure).
    pub mismatches: u64,
    /// Persisted artifacts that failed the audit stack (harness failure).
    pub audit_failures: u64,
    /// Spool entries accepted but never completed (harness failure).
    pub lost: Vec<String>,
}

impl LoadTestReport {
    /// Did the daemon keep every promise under chaos?
    pub fn passed(&self) -> bool {
        self.lost.is_empty()
            && self.mismatches == 0
            && self.audit_failures == 0
            && self.gave_up == 0
            && self.protocol_errors == 0
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadtest: {} sent | {} ok, {} degraded ({} cached, {} resumed)\n",
            self.sent, self.ok, self.degraded, self.cached, self.resumed
        ));
        out.push_str(&format!(
            "          {} retries absorbed, {} deadline sheds, {} panic/breaker, \
             {} malformed + {} oversized rejected, {} kill(s)\n",
            self.retries,
            self.deadline,
            self.panicked,
            self.malformed_rejected,
            self.oversized_rejected,
            self.kills
        ));
        out.push_str(&format!(
            "          failures: {} lost, {} mismatched, {} audit, {} gave-up, {} protocol\n",
            self.lost.len(),
            self.mismatches,
            self.audit_failures,
            self.gave_up,
            self.protocol_errors
        ));
        for name in &self.lost {
            out.push_str(&format!("          LOST {name}\n"));
        }
        out.push_str(if self.passed() {
            "          PASS: no accepted request lost, all artifacts byte-identical and audited\n"
        } else {
            "          FAIL\n"
        });
        out
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The request mix, derived deterministically from `(seed, index)`.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ReqKind {
    /// A small fully specified PLA function (12 variants → duplicates).
    ValidPla(u64),
    /// Same, with `checkpoint:true` so kills leave resumable state.
    Checkpointed(u64),
    /// A step-limited spec: must complete `degraded`, deterministically.
    StepLimited(u64),
    /// A registry benchmark by label.
    Registry(usize),
    /// `deadline_ms: 0` — must be shed with a `deadline` error.
    DeadlineZero(u64),
    /// The panicking benchmark: quarantine + circuit breaker.
    PanicProbe,
    /// A syntactically broken frame: typed `malformed` rejection.
    Malformed,
    /// A frame above the size cap: typed `oversized` rejection.
    Oversized,
}

const REGISTRY_LABELS: [&str; 2] = ["1-digit decimal adder", "3-5 RNS"];

fn kind_for(seed: u64, index: usize) -> ReqKind {
    let r = splitmix64(seed ^ (index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    match r % 100 {
        0..=34 => ReqKind::ValidPla((r >> 8) % 12),
        35..=49 => ReqKind::Checkpointed((r >> 8) % 6),
        50..=59 => ReqKind::StepLimited((r >> 8) % 4),
        60..=69 => ReqKind::Registry(((r >> 8) % REGISTRY_LABELS.len() as u64) as usize),
        70..=79 => ReqKind::DeadlineZero((r >> 8) % 4),
        80..=86 => ReqKind::PanicProbe,
        87..=93 => ReqKind::Malformed,
        _ => ReqKind::Oversized,
    }
}

/// A fully specified 3-in/2-out PLA whose output column is `variant`'s
/// bits — 12 distinct tiny functions, deterministic on both sides.
pub(crate) fn pla_text(variant: u64) -> String {
    let bits = splitmix64(variant.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0xa5a5);
    let mut text = String::from(".i 3\n.o 2\n");
    for minterm in 0..8u64 {
        let o0 = (bits >> minterm) & 1;
        let o1 = (bits >> (minterm + 8)) & 1;
        text.push_str(&format!(
            "{}{}{} {}{}\n",
            (minterm >> 2) & 1,
            (minterm >> 1) & 1,
            minterm & 1,
            o0,
            o1
        ));
    }
    text.push_str(".e\n");
    text
}

/// The spec + request knobs for a kind, or `None` for protocol abuse.
fn spec_for(kind: &ReqKind) -> Option<(SynthSpec, Option<u64>, bool)> {
    match kind {
        ReqKind::ValidPla(v) => Some((SynthSpec::new(Source::Pla(pla_text(*v))), None, false)),
        ReqKind::Checkpointed(v) => {
            Some((SynthSpec::new(Source::Pla(pla_text(100 + *v))), None, true))
        }
        ReqKind::StepLimited(v) => {
            let mut spec = SynthSpec::new(Source::Pla(pla_text(200 + *v)));
            spec.step_limit = Some(4);
            Some((spec, None, false))
        }
        ReqKind::Registry(i) => Some((
            SynthSpec::new(Source::Registry(REGISTRY_LABELS[*i].into())),
            None,
            false,
        )),
        ReqKind::DeadlineZero(v) => Some((
            SynthSpec::new(Source::Pla(pla_text(300 + *v))),
            Some(0),
            false,
        )),
        ReqKind::PanicProbe => Some((
            SynthSpec::new(Source::Registry("panic probe".into())),
            None,
            false,
        )),
        ReqKind::Malformed | ReqKind::Oversized => None,
    }
}

// ---------------------------------------------------------------------
// Server control (in-process or child process)
// ---------------------------------------------------------------------

enum Daemon {
    InProcess(Option<Server>),
    Child(Option<Child>),
}

struct Ctl {
    daemon: Daemon,
    addr: SocketAddr,
}

fn server_config(config: &LoadTestConfig) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        spool_dir: Some(config.spool_dir.clone()),
        ..ServerConfig::default()
    }
}

fn start_daemon(config: &LoadTestConfig) -> Result<Ctl, String> {
    match &config.server_bin {
        None => {
            let server = Server::start(server_config(config))
                .map_err(|e| format!("starting in-process server: {e}"))?;
            let addr = server.local_addr();
            Ok(Ctl {
                daemon: Daemon::InProcess(Some(server)),
                addr,
            })
        }
        Some(bin) => {
            let mut child = Command::new(bin)
                .args([
                    "serve",
                    "--addr",
                    "127.0.0.1:0",
                    "--workers",
                    &config.workers.to_string(),
                    "--queue-cap",
                    &config.queue_capacity.to_string(),
                    "--spool",
                ])
                .arg(&config.spool_dir)
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| format!("spawning {}: {e}", bin.display()))?;
            let stdout = child
                .stdout
                .take()
                .ok_or("child stdout not captured".to_string())?;
            let mut lines = BufReader::new(stdout).lines();
            let addr = loop {
                let line = lines
                    .next()
                    .ok_or("daemon exited before announcing its address".to_string())?
                    .map_err(|e| format!("reading daemon stdout: {e}"))?;
                if let Some(rest) = line.strip_prefix("listening on ") {
                    break rest
                        .trim()
                        .parse::<SocketAddr>()
                        .map_err(|e| format!("bad daemon address {rest:?}: {e}"))?;
                }
            };
            // Keep draining stdout so the daemon never blocks on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            Ok(Ctl {
                daemon: Daemon::Child(Some(child)),
                addr,
            })
        }
    }
}

/// Sends one control frame and returns the raw reply payload.
fn control_request(addr: SocketAddr, request: &Request) -> Result<Vec<u8>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &request.to_bytes()).map_err(|e| format!("send: {e}"))?;
    match read_frame(&mut reader, crate::protocol::DEFAULT_MAX_FRAME) {
        Ok(Some(payload)) => Ok(payload),
        Ok(None) => Err("daemon closed before replying".into()),
        Err(e) => Err(format!("read: {e}")),
    }
}

/// Kills the daemon mid-batch and restarts it on the same spool.
fn kill_and_restart(ctl: &mut Ctl, config: &LoadTestConfig) -> Result<(), String> {
    match &mut ctl.daemon {
        Daemon::InProcess(server) => {
            // No process to SIGKILL in-process: a checkpoint-mode shutdown
            // is the closest chaos — in-flight jobs park, queued jobs stay
            // spooled, and the restart must recover both.
            let shutdown = Request {
                id: "chaos-kill".into(),
                body: RequestBody::Shutdown(ShutdownMode::Checkpoint),
            };
            let _ = control_request(ctl.addr, &shutdown);
            if let Some(server) = server.take() {
                let _ = server.wait();
            }
        }
        Daemon::Child(child) => {
            if let Some(mut child) = child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
    let restarted = start_daemon(config)?;
    ctl.daemon = restarted.daemon;
    ctl.addr = restarted.addr;
    Ok(())
}

/// Final drain shutdown; waits for the daemon to exit.
fn finish_daemon(ctl: &mut Ctl) -> Result<(), String> {
    let shutdown = Request {
        id: "final-drain".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let ack = control_request(ctl.addr, &shutdown)?;
    if parse_control_status(&ack).as_deref() != Some("ok") {
        return Err(format!(
            "drain shutdown not acknowledged: {}",
            String::from_utf8_lossy(&ack)
        ));
    }
    match &mut ctl.daemon {
        Daemon::InProcess(server) => {
            if let Some(server) = server.take() {
                let _ = server.wait();
            }
        }
        Daemon::Child(child) => {
            if let Some(mut child) = child.take() {
                for _ in 0..3000 {
                    if child.try_wait().map_err(|e| e.to_string())?.is_some() {
                        return Ok(());
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                let _ = child.kill();
                return Err("daemon did not exit after drain shutdown".into());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Expected results (computed locally, once per unique spec)
// ---------------------------------------------------------------------

#[derive(Default)]
struct Expected {
    results: Mutex<HashMap<u64, Option<(SynthResult, bool)>>>,
}

impl Expected {
    /// The locally computed result for `spec` (None if it cannot complete,
    /// e.g. the panic probe).
    fn result_for(&self, spec: &SynthSpec) -> Option<(SynthResult, bool)> {
        let hash = spec.hash();
        if let Some(found) = lock(&self.results).get(&hash) {
            return found.clone();
        }
        let budget = spec
            .step_limit
            .map(|s| Budget::default().with_step_limit(s));
        let computed = execute(spec, budget, None, false)
            .ok()
            .map(|out| (out.result, out.degraded));
        lock(&self.results).insert(hash, computed.clone());
        computed
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// The client side
// ---------------------------------------------------------------------

enum Attempt {
    Done(Box<Response>),
    Retry(Option<ErrorCode>),
}

fn send_once(addr: SocketAddr, payload: &[u8]) -> Attempt {
    let Ok(stream) = TcpStream::connect(addr) else {
        return Attempt::Retry(None);
    };
    if stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .is_err()
    {
        return Attempt::Retry(None);
    }
    let Ok(read_half) = stream.try_clone() else {
        return Attempt::Retry(None);
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    if write_frame(&mut writer, payload).is_err() {
        return Attempt::Retry(None);
    }
    match read_frame(&mut reader, crate::protocol::DEFAULT_MAX_FRAME) {
        Ok(Some(reply)) => match Response::from_bytes(&reply) {
            Ok(response) => {
                if let Some((code, _)) = &response.error {
                    if code.is_retryable() {
                        return Attempt::Retry(Some(*code));
                    }
                }
                Attempt::Done(Box::new(response))
            }
            Err(_) => Attempt::Retry(None),
        },
        // A kill mid-request: the connection just dies. Retry.
        Ok(None) | Err(_) => Attempt::Retry(None),
    }
}

struct ClientOutcome {
    report: LoadTestReport,
}

#[allow(clippy::too_many_lines)]
fn run_client(
    client_idx: usize,
    config: &LoadTestConfig,
    ctl: &Mutex<Ctl>,
    expected: &Expected,
) -> ClientOutcome {
    let mut report = LoadTestReport::default();
    let mut index = client_idx;
    while index < config.requests {
        let kind = kind_for(config.seed, index);
        report.sent += 1;
        match &kind {
            ReqKind::Malformed => {
                let addr = lock(ctl).addr;
                match send_raw_expect_error(addr, b"{\"id\":\"m\",\"op\":\"nope\"}") {
                    Some(ErrorCode::Malformed) => report.malformed_rejected += 1,
                    Some(_) => report.protocol_errors += 1,
                    None => {} // connection raced a kill; not a verdict
                }
            }
            ReqKind::Oversized => {
                let addr = lock(ctl).addr;
                let mut frame = Vec::new();
                // An honest prefix claiming far more than the cap; the
                // daemon must reject on the prefix alone.
                frame.extend_from_slice(&(64u32 * 1024 * 1024).to_le_bytes());
                match send_bytes_expect_error(addr, &frame) {
                    Some(ErrorCode::Oversized) => report.oversized_rejected += 1,
                    Some(_) => report.protocol_errors += 1,
                    None => {}
                }
            }
            other => {
                let Some((spec, deadline_ms, checkpoint)) = spec_for(other) else {
                    continue;
                };
                let request = Request {
                    id: format!("c{client_idx}-{index}"),
                    body: RequestBody::Synth {
                        spec: spec.clone(),
                        deadline_ms,
                        checkpoint,
                    },
                };
                let payload = request.to_bytes();
                let mut attempt = 0u32;
                let response = loop {
                    attempt += 1;
                    if attempt > 80 {
                        break None;
                    }
                    let addr = lock(ctl).addr;
                    match send_once(addr, &payload) {
                        Attempt::Done(response) => break Some(*response),
                        Attempt::Retry(code) => {
                            if code.is_some() {
                                report.retries += 1;
                            }
                            let jitter =
                                splitmix64(config.seed ^ (index as u64) ^ u64::from(attempt)) % 7;
                            let base = 2u64.saturating_pow(attempt.min(6));
                            std::thread::sleep(Duration::from_millis(base.min(100) + jitter));
                        }
                    }
                };
                match response {
                    None => report.gave_up += 1,
                    Some(response) => {
                        classify(&kind, &spec, &request.id, response, expected, &mut report)
                    }
                }
            }
        }
        index += config.clients;
    }
    ClientOutcome { report }
}

/// Sends raw bytes and expects a typed error reply (None when the
/// connection died first, e.g. across a kill).
fn send_bytes_expect_error(addr: SocketAddr, bytes: &[u8]) -> Option<ErrorCode> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let read_half = stream.try_clone().ok()?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    std::io::Write::write_all(&mut writer, bytes).ok()?;
    std::io::Write::flush(&mut writer).ok()?;
    let reply = read_frame(&mut reader, crate::protocol::DEFAULT_MAX_FRAME)
        .ok()
        .flatten()?;
    let response = Response::from_bytes(&reply).ok()?;
    response.error.map(|(code, _)| code)
}

fn send_raw_expect_error(addr: SocketAddr, payload: &[u8]) -> Option<ErrorCode> {
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    send_bytes_expect_error(addr, &frame)
}

/// Scores one terminal response against the contract for its kind.
fn classify(
    kind: &ReqKind,
    spec: &SynthSpec,
    id: &str,
    response: Response,
    expected: &Expected,
    report: &mut LoadTestReport,
) {
    match kind {
        ReqKind::DeadlineZero(_) => match &response.error {
            Some((ErrorCode::Deadline, _)) => report.deadline += 1,
            _ => report.protocol_errors += 1,
        },
        ReqKind::PanicProbe => match &response.error {
            Some((ErrorCode::Panicked | ErrorCode::CircuitOpen, _)) => report.panicked += 1,
            _ => report.protocol_errors += 1,
        },
        ReqKind::ValidPla(_)
        | ReqKind::Checkpointed(_)
        | ReqKind::StepLimited(_)
        | ReqKind::Registry(_) => {
            if response.status == Status::Error {
                report.protocol_errors += 1;
                return;
            }
            if response.cached {
                report.cached += 1;
            }
            if response.resumed {
                report.resumed += 1;
            }
            match response.status {
                Status::Ok => report.ok += 1,
                Status::Degraded => report.degraded += 1,
                Status::Error => {}
            }
            let Some((want_result, want_degraded)) = expected.result_for(spec) else {
                report.mismatches += 1;
                return;
            };
            let want = Response {
                id: id.to_owned(),
                status: if want_degraded {
                    Status::Degraded
                } else {
                    Status::Ok
                },
                spec_hash: Some(spec.hash_hex()),
                error: None,
                result: Some(want_result),
                cached: false,
                resumed: false,
                storage_degraded: false,
            };
            if want.artifact_bytes() != response.artifact_bytes() {
                report.mismatches += 1;
            }
        }
        ReqKind::Malformed | ReqKind::Oversized => {}
    }
}

// ---------------------------------------------------------------------
// Post-mortem: spool scan + audits
// ---------------------------------------------------------------------

fn audit_spool(config: &LoadTestConfig, report: &mut LoadTestReport) {
    let Ok(entries) = std::fs::read_dir(&config.spool_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("req-") || !path.is_dir() {
            continue;
        }
        let accepted = path.join("request.json").exists();
        let completed = path.join("response.json").exists();
        if accepted && !completed {
            report.lost.push(name);
            continue;
        }
        if !completed {
            continue;
        }
        // Audit every persisted success against its own acceptance record.
        let Ok(request_bytes) = std::fs::read(path.join("request.json")) else {
            continue;
        };
        let Ok(request) = Request::from_bytes(&request_bytes) else {
            report.audit_failures += 1;
            continue;
        };
        let RequestBody::Synth { spec, .. } = request.body else {
            continue;
        };
        let Ok(response_bytes) = std::fs::read(path.join("response.json")) else {
            report.lost.push(name);
            continue;
        };
        let Ok(response) = Response::from_bytes(&response_bytes) else {
            report.audit_failures += 1;
            continue;
        };
        if response.status != Status::Ok {
            continue;
        }
        let Some(result) = &response.result else {
            report.audit_failures += 1;
            continue;
        };
        let audit_ok = crate::job::build_cf(&spec).is_ok_and(|mut spec_cf| {
            audit_artifact_text(
                &result.cascade,
                &result.verilog,
                &format!("spec_{}", spec.hash_hex()),
                &mut spec_cf,
                &name,
            )
            .is_clean()
        });
        if !audit_ok {
            report.audit_failures += 1;
        }
    }
}

// ---------------------------------------------------------------------
// The harness driver
// ---------------------------------------------------------------------

/// Runs the whole harness; see the module docs for what is asserted.
pub fn run_loadtest(config: &LoadTestConfig) -> Result<LoadTestReport, String> {
    std::fs::create_dir_all(&config.spool_dir)
        .map_err(|e| format!("spool dir {}: {e}", config.spool_dir.display()))?;
    // In-process daemons panic on purpose (the probe spec); keep the test
    // output readable. Child daemons already write stderr to /dev/null.
    if config.server_bin.is_none() {
        bddcf_check::with_quiet_panics(|| drive(config))
    } else {
        drive(config)
    }
}

fn drive(config: &LoadTestConfig) -> Result<LoadTestReport, String> {
    let ctl = Arc::new(Mutex::new(start_daemon(config)?));
    let expected = Arc::new(Expected::default());

    // The killer: wait for a deterministic fraction of wall-progress, then
    // kill + restart once.
    let killer = if config.kill {
        let ctl = Arc::clone(&ctl);
        let config = config.clone();
        Some(std::thread::spawn(move || {
            let pause = 120 + splitmix64(config.seed) % 180;
            std::thread::sleep(Duration::from_millis(pause));
            let mut guard = lock(&ctl);
            // Holding `ctl` across the restart is the point: the guard
            // is the barrier that keeps clients from reaching a daemon
            // that is mid-kill; they block here and retry against the
            // restarted instance.
            // xlint: allow(XL202) — intentional barrier, see above.
            kill_and_restart(&mut guard, &config).map(|()| 1u64)
        }))
    } else {
        None
    };

    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|client_idx| {
            let ctl = Arc::clone(&ctl);
            let config = config.clone();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || run_client(client_idx, &config, &ctl, &expected))
        })
        .collect();

    let mut report = LoadTestReport::default();
    for handle in clients {
        let outcome = handle
            .join()
            .map_err(|_| "a client thread panicked".to_string())?;
        merge(&mut report, &outcome.report);
    }
    if let Some(killer) = killer {
        let kills = killer
            .join()
            .map_err(|_| "the killer thread panicked".to_string())??;
        report.kills = kills;
    }

    // Every clone of `ctl` joined above, so take the controller out of
    // its mutex: the final drain shutdown must not run under a guard.
    let mut ctl = Arc::try_unwrap(ctl)
        .map_err(|_| "a daemon-controller handle outlived its thread".to_string())?
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    finish_daemon(&mut ctl)?;
    audit_spool(config, &mut report);
    Ok(report)
}

fn merge(into: &mut LoadTestReport, from: &LoadTestReport) {
    into.sent += from.sent;
    into.ok += from.ok;
    into.degraded += from.degraded;
    into.cached += from.cached;
    into.resumed += from.resumed;
    into.retries += from.retries;
    into.deadline += from.deadline;
    into.panicked += from.panicked;
    into.malformed_rejected += from.malformed_rejected;
    into.oversized_rejected += from.oversized_rejected;
    into.gave_up += from.gave_up;
    into.protocol_errors += from.protocol_errors;
    into.mismatches += from.mismatches;
    into.audit_failures += from.audit_failures;
    into.lost.extend(from.lost.iter().cloned());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_mix_is_deterministic_and_diverse() {
        let kinds: Vec<ReqKind> = (0..200).map(|i| kind_for(7, i)).collect();
        let again: Vec<ReqKind> = (0..200).map(|i| kind_for(7, i)).collect();
        assert_eq!(kinds, again);
        let count = |f: fn(&ReqKind) -> bool| kinds.iter().filter(|k| f(k)).count();
        assert!(count(|k| matches!(k, ReqKind::ValidPla(_))) > 20);
        assert!(count(|k| matches!(k, ReqKind::Malformed)) > 3);
        assert!(count(|k| matches!(k, ReqKind::Oversized)) > 3);
        assert!(count(|k| matches!(k, ReqKind::PanicProbe)) > 3);
        assert!(count(|k| matches!(k, ReqKind::DeadlineZero(_))) > 5);
        // Duplicates exist (12 PLA variants over ~70 valid requests).
        let mut hashes: Vec<u64> = kinds
            .iter()
            .filter_map(|k| spec_for(k).map(|(s, _, _)| s.hash()))
            .collect();
        let total = hashes.len();
        hashes.sort_unstable();
        hashes.dedup();
        assert!(hashes.len() < total, "the mix must repeat specs");
    }

    #[test]
    fn pla_variants_parse_and_differ() {
        for v in 0..12 {
            let text = pla_text(v);
            bddcf_io::parse_pla(&text).expect("variant parses");
        }
        assert_ne!(pla_text(0), pla_text(1));
    }

    #[test]
    fn small_in_process_chaos_run_passes() {
        let dir = std::env::temp_dir().join(format!("bddcf-loadtest-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = LoadTestConfig {
            requests: 60,
            clients: 3,
            seed: 11,
            kill: true,
            spool_dir: dir.clone(),
            server_bin: None,
            workers: 2,
            queue_capacity: 8,
        };
        let report = run_loadtest(&config).expect("harness runs");
        assert!(report.passed(), "{}", report.render());
        assert!(report.ok + report.degraded > 0, "{}", report.render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
