//! `bddcf serve` — a fault-tolerant long-running synthesis daemon.
//!
//! The batch pipeline (PR1–PR5) answers one request per process. This
//! crate turns it into a *service*: a daemon that accepts synthesis
//! requests over a length-prefixed JSON protocol ([`protocol`]), runs them
//! on a fixed worker pool of per-job `BddManager`s ([`pool`]), and stays
//! correct and available under every failure mode the batch layers already
//! handle one at a time — overload, deadline expiry, worker panics,
//! process crashes:
//!
//! * **Admission control** — a bounded request queue plus a global
//!   in-flight node budget sharded across workers; requests that do not
//!   fit are rejected *immediately* with typed `queue_full` /
//!   `overloaded` errors rather than queued into collapse.
//! * **Deadlines** — per-request deadlines ride the existing
//!   [`Budget`](bddcf_bdd::Budget) machinery behind an injectable
//!   [`Clock`](bddcf_bdd::Clock), so expiry in the queue sheds the job on
//!   its first charged step and expiry mid-run degrades in-band with a
//!   [`DegradationReport`](bddcf_core::DegradationReport).
//! * **Fault isolation** — each job runs quarantined
//!   ([`bddcf_check::run_quarantined`]); a panic poisons and discards only
//!   that job's manager, and a per-spec circuit breaker opens after
//!   repeated failures of the same spec hash.
//! * **Crash recovery** — accepted requests are spooled atomically
//!   ([`server`]); long reductions checkpoint via the PR4 `BDDCFCKP`
//!   format; a restarted daemon replays the spool and produces
//!   byte-identical responses.
//! * **Chaos harness** — [`loadtest`] drives a real daemon process with a
//!   seeded mix of valid, malformed, oversized, and duplicate requests,
//!   kills it mid-batch, restarts it, and proves no accepted request was
//!   lost and every artifact passes the full audit stack.
//! * **Storage-fault robustness** — every durable path runs over an
//!   injectable [`Vfs`](bddcf_bdd::vfs::Vfs); [`diskchaos`] sweeps
//!   power-loss crash prefixes and seeded write faults over checkpoint
//!   sequences and the serve spool, and an ENOSPC disk degrades the
//!   daemon to explicit non-durable serving instead of killing it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod diskchaos;
pub mod job;
pub mod json;
pub mod loadtest;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::ResponseCache;
pub use diskchaos::{run_diskchaos, DiskChaosConfig, DiskChaosReport};
pub use job::{build_cf, execute, execute_vfs, resolve_benchmark, ExecError, ExecOutcome};
pub use loadtest::{run_loadtest, LoadTestConfig, LoadTestReport};
pub use pool::{AdmitError, PoolConfig, WorkerPool};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, RequestBody, Response, ShutdownMode,
    Source, Status, SynthResult, SynthSpec, SynthStats, DEFAULT_MAX_FRAME,
};
pub use server::{Server, ServerConfig, ServerStats};
