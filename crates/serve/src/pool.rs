//! The fixed worker pool: bounded admission, node-budget sharding,
//! per-spec circuit breaking, and quarantined execution.
//!
//! Overload policy is **reject early, never queue into collapse**: a
//! request is admitted only if (a) the daemon is not draining, (b) the
//! spec's circuit breaker is closed, (c) the bounded queue has room, and
//! (d) its node shard fits under the global in-flight node budget. Every
//! rejection is a typed, retryable-or-not protocol error computed in O(1)
//! under one lock — an overloaded daemon answers *faster*, not slower.
//!
//! Fault isolation is structural: each job runs on its own fresh
//! `BddManager` inside [`run_quarantined`], so a panicking job poisons
//! only an arena that is dropped on the spot; the worker thread itself is
//! recycled for the next job. Repeated failures of the *same* spec hash
//! open a per-spec circuit breaker so one poison request cannot grind the
//! pool down by being retried forever.

use crate::job::{execute_vfs, ExecError};
use crate::protocol::{ErrorCode, Response, Status, SynthSpec};
use bddcf_bdd::vfs::{StdVfs, Vfs};
use bddcf_bdd::{Budget, CancelToken, Clock, MonotonicClock};
use bddcf_check::run_quarantined;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool sizing and robustness knobs.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker threads (each runs one job at a time on a fresh manager).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are `queue_full`.
    pub queue_capacity: usize,
    /// Global node budget: the sum of the node shards of all queued and
    /// running jobs may not exceed this; submissions beyond it are
    /// `overloaded`.
    pub max_inflight_nodes: usize,
    /// Node shard reserved for a job whose spec carries no `node_limit`.
    pub default_node_limit: usize,
    /// Consecutive failures (panic / internal error) of one spec hash
    /// before its breaker opens.
    pub breaker_threshold: u32,
    /// Rejections an open breaker serves before letting one half-open
    /// trial job through.
    pub breaker_cooldown: u32,
    /// Time source for queue-shedding and in-run deadlines; injectable so
    /// deadline tests are deterministic.
    pub clock: Arc<dyn Clock>,
    /// Chaos/test hook: while `true`, workers hold picked-up jobs without
    /// executing, so tests can fill the queue deterministically.
    pub hold: Option<Arc<AtomicBool>>,
    /// Filesystem used for checkpoint reads/writes (injectable so the
    /// diskchaos harness can fault and crash the storage under real jobs).
    pub vfs: Arc<dyn Vfs>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            queue_capacity: 16,
            max_inflight_nodes: 1 << 22,
            default_node_limit: 1 << 20,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            clock: Arc::new(MonotonicClock),
            hold: None,
            vfs: Arc::new(StdVfs),
        }
    }
}

/// One admitted unit of work.
pub struct Job {
    /// Client-chosen request id, echoed in the response.
    pub id: String,
    /// What to synthesize.
    pub spec: SynthSpec,
    /// Absolute deadline on the pool's clock; expiry in the queue sheds
    /// the job, expiry mid-run degrades or fails in-band.
    pub deadline: Option<Instant>,
    /// Checkpoint directory for this job (enables park/resume).
    pub ckpt_dir: Option<PathBuf>,
    /// Spool entry directory when this job *owns* the durable record for
    /// its spec hash — the completion hook persists the response there.
    pub spool_entry: Option<PathBuf>,
    /// Resume from the latest checkpoint in `ckpt_dir` first.
    pub resume: bool,
    /// Where to deliver the response; dropped without a send when the job
    /// parks (the waiter observes a disconnect, not a result).
    pub reply: Option<mpsc::Sender<Response>>,
}

/// Why a submission was rejected at admission (all O(1) decisions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded queue is full.
    QueueFull,
    /// The job's node shard does not fit under the global budget.
    Overloaded,
    /// The daemon is shutting down.
    Draining,
    /// This spec hash has failed repeatedly; breaker is open.
    CircuitOpen,
}

impl AdmitError {
    /// The protocol error code for this rejection.
    pub fn code(self) -> ErrorCode {
        match self {
            AdmitError::QueueFull => ErrorCode::QueueFull,
            AdmitError::Overloaded => ErrorCode::Overloaded,
            AdmitError::Draining => ErrorCode::Draining,
            AdmitError::CircuitOpen => ErrorCode::CircuitOpen,
        }
    }

    /// Human-readable rejection message.
    pub fn message(self) -> &'static str {
        match self {
            AdmitError::QueueFull => "request queue is full; retry with backoff",
            AdmitError::Overloaded => "in-flight node budget exhausted; retry with backoff",
            AdmitError::Draining => "daemon is draining; retry against a restarted daemon",
            AdmitError::CircuitOpen => "this spec has failed repeatedly; circuit breaker open",
        }
    }
}

/// Monotonic pool counters (a snapshot; see [`WorkerPool::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Jobs admitted past all four gates.
    pub submitted: u64,
    /// Jobs that completed with a clean artifact.
    pub completed: u64,
    /// Jobs that completed with a degradation report.
    pub degraded: u64,
    /// Jobs that failed with a typed error (other than panic/deadline).
    pub failed: u64,
    /// Jobs whose worker panicked (quarantined, manager discarded).
    pub panicked: u64,
    /// Jobs shed because their deadline passed while queued.
    pub shed_deadline: u64,
    /// Jobs parked at a resumable checkpoint (halt-mode shutdown).
    pub parked: u64,
    /// Rejections: bounded queue full.
    pub rejected_queue_full: u64,
    /// Rejections: node budget exhausted.
    pub rejected_overloaded: u64,
    /// Rejections: daemon draining.
    pub rejected_draining: u64,
    /// Rejections: circuit breaker open.
    pub rejected_breaker: u64,
    /// Jobs whose checkpoint storage failed; they completed un-checkpointed
    /// with `storage_degraded` set (never breaker-visible as a fault).
    pub storage_degraded_jobs: u64,
    /// Peak live node count over any single completed job's manager.
    pub engine_peak_nodes: u64,
    /// Peak arena footprint in bytes over any single completed job.
    pub engine_peak_arena_bytes: u64,
    /// Unique-table lookups, summed over completed jobs' managers.
    pub engine_unique_lookups: u64,
    /// Unique-table chain links followed, summed over completed jobs.
    pub engine_unique_probes: u64,
    /// Op-cache hits (all four caches), summed over completed jobs.
    pub engine_cache_hits: u64,
    /// Op-cache misses (all four caches), summed over completed jobs.
    pub engine_cache_misses: u64,
    /// Garbage collections run, summed over completed jobs.
    pub engine_gc_runs: u64,
    /// Wall time inside GC in nanoseconds, summed over completed jobs.
    pub engine_gc_pause_ns: u64,
}

/// Per-spec-hash consecutive-failure breaker.
struct Breaker {
    consecutive: u32,
    open: bool,
    cooldown_left: u32,
}

struct QueuedJob {
    job: Job,
    shard: usize,
    token: CancelToken,
}

struct PoolState {
    queue: VecDeque<QueuedJob>,
    committed_nodes: usize,
    inflight: usize,
    draining: bool,
    stopping: bool,
    breakers: HashMap<u64, Breaker>,
    active: HashMap<usize, CancelToken>,
    counters: PoolCounters,
}

/// Callback invoked (off-lock) with every completed response — the server
/// uses it to write the spool record and feed the response cache. The
/// response is mutable so the hook can flag `storage_degraded` when the
/// durable completion record itself cannot be written, *before* the reply
/// reaches the client.
pub type DoneHook = Arc<dyn Fn(&Job, &mut Response) + Send + Sync>;

struct Shared {
    state: Mutex<PoolState>,
    work: Condvar,
    idle: Condvar,
    queue_capacity: usize,
    max_inflight_nodes: usize,
    default_node_limit: usize,
    breaker_threshold: u32,
    breaker_cooldown: u32,
    clock: Arc<dyn Clock>,
    hold: Option<Arc<AtomicBool>>,
    vfs: Arc<dyn Vfs>,
    done: DoneHook,
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, PoolState> {
    // A worker never panics while holding the lock (jobs run outside it),
    // but a poisoned lock must not take the whole daemon down.
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The pool: a bounded queue drained by a fixed set of worker threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns the workers. `done` fires for every job that produces a
    /// response (not for parked jobs, whose spool entries stay open).
    pub fn start(config: PoolConfig, done: DoneHook) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                committed_nodes: 0,
                inflight: 0,
                draining: false,
                stopping: false,
                breakers: HashMap::new(),
                active: HashMap::new(),
                counters: PoolCounters::default(),
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            max_inflight_nodes: config.max_inflight_nodes.max(1),
            default_node_limit: config.default_node_limit.max(1),
            breaker_threshold: config.breaker_threshold.max(1),
            breaker_cooldown: config.breaker_cooldown,
            clock: config.clock,
            hold: config.hold,
            vfs: config.vfs,
            done,
        });
        let workers = config.workers.max(1);
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bddcf-worker-{idx}"))
                    .spawn(move || worker_loop(idx, &shared))
                    .unwrap_or_else(|e| panic!("spawning worker {idx}: {e}"))
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Admission control. All four gates are checked under one lock in
    /// O(1); on success the job's node shard is committed immediately so
    /// concurrent submissions cannot oversubscribe the budget.
    pub fn submit(&self, job: Job) -> Result<(), AdmitError> {
        let shared = &self.shared;
        let mut state = lock_state(shared);
        if state.draining {
            state.counters.rejected_draining += 1;
            return Err(AdmitError::Draining);
        }
        let hash = job.spec.hash();
        if let Some(breaker) = state.breakers.get_mut(&hash) {
            // An open breaker with spent cooldown is half-open: exactly
            // that trial passes; its outcome closes the breaker or
            // re-arms the cooldown.
            if breaker.open && breaker.cooldown_left > 0 {
                breaker.cooldown_left -= 1;
                state.counters.rejected_breaker += 1;
                return Err(AdmitError::CircuitOpen);
            }
        }
        if state.queue.len() >= shared.queue_capacity {
            state.counters.rejected_queue_full += 1;
            return Err(AdmitError::QueueFull);
        }
        let shard = job
            .spec
            .node_limit
            .unwrap_or(shared.default_node_limit)
            .clamp(1, shared.max_inflight_nodes);
        if state.committed_nodes + shard > shared.max_inflight_nodes {
            state.counters.rejected_overloaded += 1;
            return Err(AdmitError::Overloaded);
        }
        state.committed_nodes += shard;
        state.counters.submitted += 1;
        state.queue.push_back(QueuedJob {
            job,
            shard,
            token: CancelToken::new(),
        });
        drop(state);
        shared.work.notify_one();
        Ok(())
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> PoolCounters {
        lock_state(&self.shared).counters
    }

    /// Jobs currently queued (not yet picked up).
    pub fn queue_len(&self) -> usize {
        lock_state(&self.shared).queue.len()
    }

    /// Jobs currently running on workers.
    pub fn inflight(&self) -> usize {
        lock_state(&self.shared).inflight
    }

    /// Node budget currently committed to queued + running jobs.
    pub fn committed_nodes(&self) -> usize {
        lock_state(&self.shared).committed_nodes
    }

    /// Stops admitting and lets every queued and running job finish
    /// (graceful drain). Returns once the pool is idle; call
    /// [`WorkerPool::join`] afterwards.
    pub fn begin_drain(&self) {
        let mut state = lock_state(&self.shared);
        state.draining = true;
        while state.inflight > 0 || !state.queue.is_empty() {
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.stopping = true;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Stops admitting, discards the queue (their spool entries survive
    /// for recovery), and fires every running job's cancel token so it
    /// parks at its next resumable checkpoint.
    pub fn begin_halt(&self) {
        let mut state = lock_state(&self.shared);
        state.draining = true;
        state.stopping = true;
        while let Some(queued) = state.queue.pop_front() {
            state.committed_nodes -= queued.shard;
            state.counters.parked += 1;
            // Dropping the job drops its reply sender; the waiting
            // connection observes a disconnect and reports `draining`.
            drop(queued);
        }
        for token in state.active.values() {
            token.cancel();
        }
        drop(state);
        self.shared.work.notify_all();
    }

    /// Waits for the workers to exit (after `begin_drain`/`begin_halt`)
    /// and returns the final counters. Idempotent.
    pub fn join(&self) -> PoolCounters {
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        lock_state(&self.shared).counters
    }
}

fn worker_loop(idx: usize, shared: &Shared) {
    loop {
        let queued = {
            let mut state = lock_state(shared);
            loop {
                if let Some(queued) = state.queue.pop_front() {
                    state.inflight += 1;
                    state.active.insert(idx, queued.token.clone());
                    break Some(queued);
                }
                if state.stopping {
                    break None;
                }
                state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(queued) = queued else { return };

        if let Some(hold) = &shared.hold {
            while hold.load(Ordering::Relaxed) && !queued.token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let (response, engine) = run_one(shared, &queued);

        let mut state = lock_state(shared);
        state.inflight -= 1;
        state.committed_nodes -= queued.shard;
        state.active.remove(&idx);
        settle(
            &mut state,
            shared,
            queued.job.spec.hash(),
            response.as_ref(),
            engine.as_ref(),
        );
        drop(state);
        shared.idle.notify_all();

        if let Some(mut response) = response {
            // The hook runs (and may flag storage degradation) before the
            // reply is sent: an accepted-and-replied request is either
            // durably recorded or explicitly marked non-durable.
            (shared.done)(&queued.job, &mut response);
            if let Some(reply) = &queued.job.reply {
                let _ = reply.send(response);
            }
        }
    }
}

/// Updates counters and the spec's circuit breaker for one finished job.
/// `None` means the job parked at a checkpoint.
fn settle(
    state: &mut PoolState,
    shared: &Shared,
    hash: u64,
    response: Option<&Response>,
    engine: Option<&bddcf_bdd::EngineStats>,
) {
    if let Some(stats) = engine {
        let cache = stats.cache_total();
        let c = &mut state.counters;
        c.engine_peak_nodes = c.engine_peak_nodes.max(stats.peak_nodes);
        c.engine_peak_arena_bytes = c.engine_peak_arena_bytes.max(stats.peak_arena_bytes);
        c.engine_unique_lookups += stats.unique_lookups;
        c.engine_unique_probes += stats.unique_probes;
        c.engine_cache_hits += cache.hits;
        c.engine_cache_misses += cache.misses;
        c.engine_gc_runs += stats.gc_runs;
        c.engine_gc_pause_ns += stats.gc_pause_ns;
    }
    let Some(response) = response else {
        state.counters.parked += 1;
        return;
    };
    if response.storage_degraded {
        state.counters.storage_degraded_jobs += 1;
    }
    let fault = match (&response.status, &response.error) {
        (Status::Ok, _) => {
            state.counters.completed += 1;
            false
        }
        (Status::Degraded, _) => {
            state.counters.degraded += 1;
            false
        }
        (Status::Error, Some((code, _))) => {
            match code {
                ErrorCode::Panicked => state.counters.panicked += 1,
                ErrorCode::Deadline => state.counters.shed_deadline += 1,
                _ => state.counters.failed += 1,
            }
            matches!(code, ErrorCode::Panicked | ErrorCode::Internal)
        }
        (Status::Error, None) => {
            state.counters.failed += 1;
            true
        }
    };
    if fault {
        let breaker = state.breakers.entry(hash).or_insert(Breaker {
            consecutive: 0,
            open: false,
            cooldown_left: 0,
        });
        breaker.consecutive += 1;
        if breaker.consecutive >= shared.breaker_threshold {
            breaker.open = true;
            breaker.cooldown_left = shared.breaker_cooldown;
        }
    } else {
        state.breakers.remove(&hash);
    }
}

/// Runs one picked-up job: queue-deadline shed, budget construction,
/// quarantined execution, and response assembly. Also returns the job
/// manager's engine counters when the job produced a result.
fn run_one(
    shared: &Shared,
    queued: &QueuedJob,
) -> (Option<Response>, Option<bddcf_bdd::EngineStats>) {
    let job = &queued.job;
    let hash_hex = job.spec.hash_hex();
    if let Some(deadline) = job.deadline {
        if shared.clock.now() >= deadline {
            let mut response = Response::failure(
                &job.id,
                ErrorCode::Deadline,
                "deadline passed while the request was queued",
            );
            response.spec_hash = Some(hash_hex);
            return (Some(response), None);
        }
    }
    let mut budget = Budget::default()
        .with_node_limit(queued.shard)
        .with_clock(shared.clock.clone())
        .with_cancel(queued.token.clone());
    budget.deadline = job.deadline;
    if let Some(steps) = job.spec.step_limit {
        budget = budget.with_step_limit(steps);
    }

    let label = format!("serve:{hash_hex}");
    let vfs = Arc::clone(&shared.vfs);
    let outcome = run_quarantined(&label, || {
        execute_vfs(
            &job.spec,
            Some(budget),
            job.ckpt_dir.as_deref(),
            job.resume,
            &vfs,
        )
    });
    let mut engine = None;
    let mut response = match outcome {
        Ok(Ok(out)) => {
            engine = Some(out.engine);
            Response {
                id: job.id.clone(),
                status: if out.degraded {
                    Status::Degraded
                } else {
                    Status::Ok
                },
                spec_hash: None,
                error: None,
                result: Some(out.result),
                cached: false,
                resumed: job.resume,
                storage_degraded: out.storage_degraded,
            }
        }
        Ok(Err(ExecError::Reject(code, message))) => Response::failure(&job.id, code, message),
        Ok(Err(ExecError::Parked)) => return (None, None),
        Err(quarantine) => Response::failure(
            &job.id,
            ErrorCode::Panicked,
            format!("worker panicked; manager discarded: {}", quarantine.payload),
        ),
    };
    response.spec_hash = Some(hash_hex);
    (Some(response), engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;
    use bddcf_bdd::FakeClock;

    const TINY_PLA: &str = ".i 2\n.o 1\n11 1\n00 1\n.e\n";

    fn tiny_job(id: &str, reply: Option<mpsc::Sender<Response>>) -> Job {
        Job {
            id: id.into(),
            spec: SynthSpec::new(Source::Pla(TINY_PLA.into())),
            deadline: None,
            ckpt_dir: None,
            spool_entry: None,
            resume: false,
            reply,
        }
    }

    fn noop_done() -> DoneHook {
        Arc::new(|_job, _response: &mut Response| {})
    }

    #[test]
    fn jobs_complete_and_counters_track() {
        let pool = WorkerPool::start(PoolConfig::default(), noop_done());
        let (tx, rx) = mpsc::channel();
        pool.submit(tiny_job("a", Some(tx))).expect("admitted");
        let response = rx.recv().expect("reply");
        assert_eq!(response.status, Status::Ok);
        assert!(response.result.is_some());
        pool.begin_drain();
        let counters = pool.join();
        assert_eq!(counters.submitted, 1);
        assert_eq!(counters.completed, 1);
    }

    #[test]
    fn queue_full_and_overload_reject_deterministically() {
        let hold = Arc::new(AtomicBool::new(true));
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            hold: Some(Arc::clone(&hold)),
            ..PoolConfig::default()
        };
        let pool = WorkerPool::start(config, noop_done());
        let (tx, rx) = mpsc::channel();
        pool.submit(tiny_job("held", Some(tx.clone())))
            .expect("admitted");
        // Wait for the (held) worker to pick the job up so the queue is
        // deterministically empty again.
        while pool.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.submit(tiny_job("queued", Some(tx.clone())))
            .expect("queued");
        assert_eq!(
            pool.submit(tiny_job("rejected", Some(tx.clone()))),
            Err(AdmitError::QueueFull)
        );
        // An oversized node ask is shed by the node budget even though the
        // queue check passed first for smaller jobs.
        let mut big = tiny_job("big", Some(tx));
        big.spec.node_limit = Some(usize::MAX);
        // queue is full, so this also reports QueueFull (checked first).
        assert!(pool.submit(big).is_err());
        hold.store(false, Ordering::Relaxed);
        let _ = rx.recv().expect("held job completes");
        let _ = rx.recv().expect("queued job completes");
        pool.begin_drain();
        let counters = pool.join();
        assert_eq!(counters.completed, 2);
        assert!(counters.rejected_queue_full >= 1);
    }

    #[test]
    fn node_budget_overload_rejects() {
        let hold = Arc::new(AtomicBool::new(true));
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 8,
            max_inflight_nodes: 1000,
            default_node_limit: 600,
            hold: Some(Arc::clone(&hold)),
            ..PoolConfig::default()
        };
        let pool = WorkerPool::start(config, noop_done());
        let (tx, rx) = mpsc::channel();
        pool.submit(tiny_job("first", Some(tx.clone())))
            .expect("fits");
        assert_eq!(
            pool.submit(tiny_job("second", Some(tx))),
            Err(AdmitError::Overloaded),
            "600 + 600 > 1000"
        );
        hold.store(false, Ordering::Relaxed);
        let _ = rx.recv().expect("first completes");
        pool.begin_drain();
        let counters = pool.join();
        assert_eq!(counters.rejected_overloaded, 1);
    }

    #[test]
    fn queued_deadline_expiry_is_shed_by_the_clock() {
        let clock = Arc::new(FakeClock::new());
        let config = PoolConfig {
            workers: 1,
            clock: clock.clone(),
            ..PoolConfig::default()
        };
        let pool = WorkerPool::start(config, noop_done());
        let (tx, rx) = mpsc::channel();
        let mut job = tiny_job("late", Some(tx));
        job.deadline = Some(clock.now() + Duration::from_millis(5));
        clock.advance(Duration::from_millis(10));
        pool.submit(job).expect("admitted");
        let response = rx.recv().expect("reply");
        assert_eq!(response.status, Status::Error);
        let (code, _) = response.error.expect("typed error");
        assert_eq!(code, ErrorCode::Deadline);
        pool.begin_drain();
        assert_eq!(pool.join().shed_deadline, 1);
    }

    #[test]
    fn panics_are_quarantined_and_open_the_breaker() {
        let config = PoolConfig {
            workers: 1,
            breaker_threshold: 2,
            breaker_cooldown: 1,
            ..PoolConfig::default()
        };
        let pool = WorkerPool::start(config, noop_done());
        let probe = || SynthSpec::new(Source::Registry("panic probe".into()));
        let outcome = bddcf_check::with_quiet_panics(|| {
            let (tx, rx) = mpsc::channel();
            let mut results = Vec::new();
            for i in 0..2 {
                let mut job = tiny_job(&format!("p{i}"), Some(tx.clone()));
                job.spec = probe();
                pool.submit(job).expect("admitted");
                results.push(rx.recv().expect("reply"));
            }
            results
        });
        for response in &outcome {
            let (code, _) = response.error.clone().expect("typed error");
            assert_eq!(code, ErrorCode::Panicked);
        }
        // Threshold reached: breaker open, next submission rejected.
        let mut job = tiny_job("p2", None);
        job.spec = probe();
        assert_eq!(pool.submit(job), Err(AdmitError::CircuitOpen));
        // Cooldown elapsed: a half-open trial is admitted again.
        let (tx, rx) = mpsc::channel();
        let mut trial = tiny_job("p3", Some(tx));
        trial.spec = probe();
        bddcf_check::with_quiet_panics(|| {
            pool.submit(trial).expect("half-open trial admitted");
            let _ = rx.recv().expect("trial reply");
        });
        // A healthy spec is unaffected by the probe's breaker.
        let (tx, rx) = mpsc::channel();
        pool.submit(tiny_job("ok", Some(tx)))
            .expect("other specs fine");
        assert_eq!(rx.recv().expect("reply").status, Status::Ok);
        pool.begin_drain();
        let counters = pool.join();
        assert!(counters.panicked >= 3);
        assert_eq!(counters.rejected_breaker, 1);
    }

    #[test]
    fn halt_parks_queued_jobs_and_cancels_running_ones() {
        let hold = Arc::new(AtomicBool::new(true));
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 4,
            hold: Some(Arc::clone(&hold)),
            ..PoolConfig::default()
        };
        let pool = WorkerPool::start(config, noop_done());
        let (tx, rx) = mpsc::channel::<Response>();
        pool.submit(tiny_job("running", Some(tx.clone())))
            .expect("admitted");
        while pool.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.submit(tiny_job("queued", Some(tx))).expect("queued");
        pool.begin_halt();
        hold.store(false, Ordering::Relaxed);
        let counters = pool.join();
        // The queued job was parked without a response: its reply sender
        // was dropped, which a server connection reports as draining.
        assert!(counters.parked >= 1);
        assert_eq!(
            pool_drained(&rx),
            0,
            "no response may be delivered for parked queued jobs"
        );
    }

    /// Counts responses delivered for parked jobs (must be none) once all
    /// senders are gone.
    fn pool_drained(rx: &mpsc::Receiver<Response>) -> usize {
        let mut parked_replies = 0;
        while let Ok(response) = rx.recv_timeout(Duration::from_secs(5)) {
            if response.id == "queued" {
                parked_replies += 1;
            }
        }
        parked_replies
    }
}
