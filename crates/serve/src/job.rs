//! Executing one synthesis job: spec → reduced `BDD_for_CF` → cascade →
//! deterministic artifacts.
//!
//! This module is the *compute* half of a worker, deliberately free of any
//! pool/server state so the chaos harness can call it directly to compute
//! the expected result of a spec on the client side and byte-compare it
//! against what the daemon returned.
//!
//! Every job builds a **fresh** [`BddManager`](bddcf_bdd::BddManager)
//! (owned by its [`Cf`]): a panic or poisoning contaminates only that
//! arena, which the worker drops — this is what makes worker recycling
//! safe without any cross-job scrubbing.

use crate::protocol::{ErrorCode, Source, SynthResult, SynthSpec, SynthStats};
use bddcf_bdd::vfs::{StdVfs, Vfs};
use bddcf_bdd::{Budget, Error as BudgetError, ReorderCost};
use bddcf_cascade::{synthesize_governed, CascadeOptions, SynthesisError};
use bddcf_check::PanicProbe;
use bddcf_core::{
    latest_valid_checkpoint_vfs, Alg33Options, Cf, CheckpointError, Checkpointer, DegradationReport,
};
use bddcf_funcs::{build_isf_pieces, small_benchmarks, table4_benchmarks, Benchmark};
use bddcf_io::{cascade_to_verilog, parse_pla, write_cascade};
use std::path::Path;
use std::sync::Arc;

/// Why a job did not produce a result.
#[derive(Debug)]
pub enum ExecError {
    /// The job failed with a typed protocol error.
    Reject(ErrorCode, String),
    /// The job was cancelled at a resumable boundary (halt-mode shutdown
    /// or a simulated kill); its spool entry stays incomplete and a
    /// restarted daemon resumes it from the latest checkpoint.
    Parked,
}

impl ExecError {
    fn internal(message: impl Into<String>) -> Self {
        ExecError::Reject(ErrorCode::Internal, message.into())
    }
}

/// Looks up a registry benchmark by its exact Table-4 label. The extra
/// `"panic probe"` label maps to the deliberately panicking benchmark from
/// `bddcf-check` — the chaos harness uses it to exercise worker quarantine
/// and the circuit breaker over the real wire protocol.
pub fn resolve_benchmark(label: &str) -> Option<Box<dyn Benchmark>> {
    if label == "panic probe" {
        return Some(Box::new(PanicProbe));
    }
    small_benchmarks()
        .into_iter()
        .chain(table4_benchmarks())
        .find(|entry| entry.label == label)
        .map(|entry| entry.benchmark)
}

/// Builds the initial (sifted, unreduced) `BDD_for_CF` of a spec.
pub fn build_cf(spec: &SynthSpec) -> Result<Cf, ExecError> {
    let mut cf = match &spec.source {
        Source::Pla(text) => {
            let pla = parse_pla(text)
                .map_err(|e| ExecError::Reject(ErrorCode::Malformed, format!("pla: {e}")))?;
            pla.to_cf()
                .map_err(|e| ExecError::Reject(ErrorCode::Malformed, format!("pla: {e}")))?
        }
        Source::Registry(label) => {
            let benchmark = resolve_benchmark(label).ok_or_else(|| {
                ExecError::Reject(
                    ErrorCode::Malformed,
                    format!("unknown registry benchmark {label:?}"),
                )
            })?;
            let (mgr, layout, isf) = build_isf_pieces(benchmark.as_ref());
            Cf::from_isf(mgr, layout, isf)
        }
    };
    if spec.sift > 0 {
        cf.optimize_order(ReorderCost::SumOfWidths, spec.sift);
    }
    Ok(cf)
}

/// A completed job: the deterministic artifact payload plus whether budget
/// pressure degraded the reduction along the way.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The response payload.
    pub result: SynthResult,
    /// True when the degradation report is non-empty.
    pub degraded: bool,
    /// Engine-health counters of the job's manager at completion. Not part
    /// of the wire result — the pool folds them into its own counters for
    /// the `stats` op.
    pub engine: bddcf_bdd::EngineStats,
    /// The checkpoint path failed (ENOSPC/EIO/corruption) and the job fell
    /// back to an un-checkpointed run: the result is correct but was not
    /// durably resumable while it ran.
    pub storage_degraded: bool,
}

/// Runs one job to completion (or a typed failure).
///
/// * `budget` — installed on the job's manager before reduction; carries
///   the per-request deadline (absolute, via the pool's [`Clock`]
///   (bddcf_bdd::Clock)), the node shard, and any cancel token.
/// * `ckpt_dir` — when set, the reduction checkpoints into this directory
///   at every resumable boundary and a fired cancel token *parks* the job
///   ([`ExecError::Parked`]) instead of degrading.
/// * `resume` — look for the latest checkpoint in `ckpt_dir` first and
///   continue from it; the PR-4 guarantee makes the artifacts
///   byte-identical to an uninterrupted run.
pub fn execute(
    spec: &SynthSpec,
    budget: Option<Budget>,
    ckpt_dir: Option<&Path>,
    resume: bool,
) -> Result<ExecOutcome, ExecError> {
    let vfs: Arc<dyn Vfs> = Arc::new(StdVfs);
    execute_vfs(spec, budget, ckpt_dir, resume, &vfs)
}

/// [`execute`] over an explicit [`Vfs`] (the fault-injection entry point).
///
/// Checkpoint-path storage failures — an unscannable directory, an
/// unopenable checkpointer, an ENOSPC/EIO during a save — do **not** fail
/// the job: it falls back to a fresh un-checkpointed reduction and the
/// outcome is flagged [`storage_degraded`](ExecOutcome::storage_degraded).
/// A corrupt newest checkpoint is quarantined and the previous sequence
/// number resumes instead (see
/// [`latest_valid_checkpoint_vfs`]).
pub fn execute_vfs(
    spec: &SynthSpec,
    budget: Option<Budget>,
    ckpt_dir: Option<&Path>,
    resume: bool,
    vfs: &Arc<dyn Vfs>,
) -> Result<ExecOutcome, ExecError> {
    let options = Alg33Options::default();
    let mut report = DegradationReport::new();
    let mut storage_degraded = false;

    // Retry the checkpoint-path failure once as a plain in-memory run: the
    // artifacts are deterministic either way, only durability is lost.
    let fallback =
        |report: &mut DegradationReport, storage_degraded: &mut bool| -> Result<Cf, ExecError> {
            *storage_degraded = true;
            *report = DegradationReport::new();
            match fresh_reduced_vfs(spec, &options, budget.clone(), None, vfs, report) {
                Ok(cf) => Ok(cf),
                // With no checkpoint dir there is no storage left to fail.
                Err(FreshError::Storage) => Err(ExecError::internal("spool-less run hit storage")),
                Err(FreshError::Exec(e)) => Err(e),
            }
        };

    let mut cf = match (resume, ckpt_dir) {
        (true, Some(dir)) => match latest_valid_checkpoint_vfs(vfs.as_ref(), dir) {
            Err(_) => fallback(&mut report, &mut storage_degraded)?,
            Ok(Some((_path, loaded))) => {
                match Checkpointer::with_vfs(Arc::clone(vfs), dir) {
                    Err(_) => fallback(&mut report, &mut storage_degraded)?,
                    Ok(mut ck) => {
                        match loaded.resume(&options, spec.max_iter, &mut ck, true) {
                            Ok((mut cf, resumed_report, stats)) => {
                                report = resumed_report;
                                if stats.is_none() {
                                    return Err(ExecError::Parked);
                                }
                                // The checkpoint stores no budget; reinstall
                                // the request's budget for the synthesis
                                // stage.
                                if let Some(b) = budget.clone() {
                                    cf.manager_mut().set_budget(b);
                                }
                                cf
                            }
                            Err(CheckpointError::Io(_)) => {
                                fallback(&mut report, &mut storage_degraded)?
                            }
                            Err(e) => {
                                return Err(ExecError::internal(format!("resume failed: {e}")))
                            }
                        }
                    }
                }
            }
            // A crash before the first checkpoint: start over.
            Ok(None) => {
                match fresh_reduced_vfs(spec, &options, budget.clone(), ckpt_dir, vfs, &mut report)
                {
                    Ok(cf) => cf,
                    Err(FreshError::Storage) => fallback(&mut report, &mut storage_degraded)?,
                    Err(FreshError::Exec(e)) => return Err(e),
                }
            }
        },
        _ => match fresh_reduced_vfs(spec, &options, budget.clone(), ckpt_dir, vfs, &mut report) {
            Ok(cf) => cf,
            Err(FreshError::Storage) => fallback(&mut report, &mut storage_degraded)?,
            Err(FreshError::Exec(e)) => return Err(e),
        },
    };

    if parked(&report) {
        return Err(ExecError::Parked);
    }

    let cascade_options = CascadeOptions {
        max_cell_inputs: spec.max_in,
        max_cell_outputs: spec.max_out,
        ..CascadeOptions::default()
    };
    let cascade =
        synthesize_governed(&mut cf, &cascade_options, &mut report).map_err(|e| match e {
            SynthesisError::Budget(BudgetError::Cancelled) => ExecError::Parked,
            SynthesisError::Budget(BudgetError::TimeBudget) => ExecError::Reject(
                ErrorCode::Deadline,
                "deadline passed during synthesis".into(),
            ),
            SynthesisError::Budget(cause) => ExecError::Reject(
                ErrorCode::Budget,
                format!("budget exhausted during synthesis: {cause}"),
            ),
            other => ExecError::Reject(ErrorCode::Infeasible, other.to_string()),
        })?;
    let _ = cf.manager_mut().take_budget();

    let module = format!("spec_{}", spec.hash_hex());
    let verilog = cascade_to_verilog(&cascade, &module)
        .map_err(|e| ExecError::internal(format!("verilog emission: {e}")))?;
    let degradations: Vec<String> = report.render().lines().map(str::to_owned).collect();
    Ok(ExecOutcome {
        engine: cf.manager().engine_stats(),
        degraded: !report.is_clean(),
        storage_degraded,
        result: SynthResult {
            stats: SynthStats {
                cells: cascade.num_cells(),
                lut_outputs: cascade.lut_outputs(),
                memory_bits: cascade.memory_bits(),
                max_rails: cascade.max_rails(),
                width: cf.max_width(),
                nodes: cf.node_count(),
            },
            cascade: write_cascade(&cascade),
            verilog,
            degradations,
        },
    })
}

/// Did the report end in a cancellation (halt-mode shutdown / simulated
/// kill)? Such jobs park rather than degrade.
fn parked(report: &DegradationReport) -> bool {
    matches!(report.terminal_cause(), Some(BudgetError::Cancelled))
}

/// Why a from-scratch reduction did not produce a `Cf`.
enum FreshError {
    /// The checkpoint path failed (dir creation or a save); the caller
    /// retries un-checkpointed and flags the outcome storage-degraded.
    Storage,
    /// A real execution failure.
    Exec(ExecError),
}

impl From<ExecError> for FreshError {
    fn from(e: ExecError) -> Self {
        FreshError::Exec(e)
    }
}

/// Build + reduce from scratch (the non-resume path).
fn fresh_reduced_vfs(
    spec: &SynthSpec,
    options: &Alg33Options,
    budget: Option<Budget>,
    ckpt_dir: Option<&Path>,
    vfs: &Arc<dyn Vfs>,
    report: &mut DegradationReport,
) -> Result<Cf, FreshError> {
    let mut cf = build_cf(spec)?;
    if let Some(b) = budget {
        cf.manager_mut().set_budget(b);
    }
    match ckpt_dir {
        Some(dir) => {
            let Ok(mut ck) = Checkpointer::with_vfs(Arc::clone(vfs), dir) else {
                return Err(FreshError::Storage);
            };
            let finished = cf
                .reduce_to_fixpoint_checkpointed(options, spec.max_iter, report, &mut ck, true)
                .map_err(|e| match e {
                    CheckpointError::Io(_) => FreshError::Storage,
                    other => {
                        FreshError::Exec(ExecError::internal(format!("checkpointing: {other}")))
                    }
                })?;
            if finished.is_none() {
                return Err(FreshError::Exec(ExecError::Parked));
            }
        }
        None => {
            cf.reduce_to_fixpoint_governed(options, spec.max_iter, report);
        }
    }
    Ok(cf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE_PLA: &str = "\
.i 5
.o 3
00000 001
00001 010
00010 011
00011 100
00100 101
01000 110
10000 111
11111 001
10101 1-0
.e
";

    fn smoke_spec() -> SynthSpec {
        SynthSpec::new(Source::Pla(SMOKE_PLA.into()))
    }

    #[test]
    fn executes_a_pla_spec_deterministically() {
        let spec = smoke_spec();
        let a = execute(&spec, None, None, false).expect("run a");
        let b = execute(&spec, None, None, false).expect("run b");
        assert!(!a.degraded);
        assert_eq!(a.result, b.result, "same spec, same bytes");
        assert!(a
            .result
            .verilog
            .contains(&format!("spec_{}", spec.hash_hex())));
        // The cascade artifact parses back and evaluates.
        let cascade = bddcf_io::read_cascade(&a.result.cascade).expect("cas parses");
        assert_eq!(cascade.num_cells(), a.result.stats.cells);
    }

    #[test]
    fn registry_specs_resolve_and_unknown_labels_reject() {
        let spec = SynthSpec::new(Source::Registry("1-digit decimal adder".into()));
        let out = execute(&spec, None, None, false).expect("registry run");
        assert!(out.result.stats.cells > 0);
        let bad = SynthSpec::new(Source::Registry("no such benchmark".into()));
        match execute(&bad, None, None, false) {
            Err(ExecError::Reject(ErrorCode::Malformed, _)) => {}
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn step_limited_jobs_degrade_in_band() {
        let mut spec = smoke_spec();
        spec.step_limit = Some(5);
        let out = execute(
            &spec,
            Some(Budget::default().with_step_limit(5)),
            None,
            false,
        )
        .expect("degraded completion");
        assert!(out.degraded);
        assert!(!out.result.degradations.is_empty());
    }

    #[test]
    fn checkpointed_run_parks_on_cancel_and_resumes_byte_identically() {
        use bddcf_bdd::CancelToken;

        let dir = std::env::temp_dir().join(format!("bddcf-serve-job-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = smoke_spec();

        // Uninterrupted baseline.
        let baseline = execute(&spec, None, None, false).expect("baseline");

        // Kill at a deterministic step count, checkpointing.
        let token = CancelToken::new();
        let budget = Budget::default().with_cancel(token).with_cancel_at_step(40);
        match execute(&spec, Some(budget), Some(&dir), false) {
            Err(ExecError::Parked) => {}
            other => panic!("expected a parked job, got {other:?}"),
        }

        // A fresh process resumes from the spooled checkpoint.
        let resumed = execute(&spec, None, Some(&dir), true).expect("resume");
        assert_eq!(resumed.result, baseline.result, "byte-identical recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
