//! A validated LRU response cache keyed by spec hash.
//!
//! Caching a synthesis response is only sound if a hit is *still* a
//! correct answer, so every hit is re-audited before it is served
//! ([`bddcf_check::audit_artifact_text`]): the cached cascade text must
//! parse and re-emit byte-faithfully, the cached Verilog must match it,
//! and the circuit's χ must still refine a specification χ rebuilt fresh
//! from the request. An entry that fails any of those is evicted and the
//! job re-runs — a rotten cache line costs one recomputation, never a
//! wrong answer.
//!
//! Only **clean** (non-degraded) results are cached: a degradation caused
//! by wall-clock pressure is a property of one overloaded moment, not of
//! the spec, and must not be replayed to a later, idle server.

use crate::job::build_cf;
use crate::protocol::{SynthResult, SynthSpec};
use bddcf_bdd::snapshot::fnv1a64;
use bddcf_check::audit_artifact_text;

/// Cache observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits that validated and were served.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Hits whose artifacts failed re-validation (entry evicted).
    pub invalidated: u64,
    /// Entries evicted by capacity pressure.
    pub evicted: u64,
}

struct Entry {
    hash: u64,
    result: SynthResult,
    checksum: u64,
    last_used: u64,
}

/// The LRU cache. Not internally synchronized — the server wraps it in
/// its shared-state mutex.
pub struct ResponseCache {
    capacity: usize,
    tick: u64,
    entries: Vec<Entry>,
    stats: CacheStats,
}

fn checksum(result: &SynthResult) -> u64 {
    let mut bytes = Vec::with_capacity(result.cascade.len() + result.verilog.len() + 1);
    bytes.extend_from_slice(result.cascade.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(result.verilog.as_bytes());
    fnv1a64(&bytes)
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            capacity,
            tick: 0,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `spec`'s result; a hit is served only after the full
    /// artifact re-audit passes. Failing entries are evicted.
    pub fn lookup(&mut self, spec: &SynthSpec) -> Option<SynthResult> {
        let hash = spec.hash();
        let Some(idx) = self.entries.iter().position(|e| e.hash == hash) else {
            self.stats.misses += 1;
            return None;
        };
        let valid = self.entries[idx].checksum == checksum(&self.entries[idx].result)
            && self.validate(spec, idx);
        if !valid {
            self.entries.remove(idx);
            self.stats.invalidated += 1;
            return None;
        }
        self.tick += 1;
        self.entries[idx].last_used = self.tick;
        self.stats.hits += 1;
        Some(self.entries[idx].result.clone())
    }

    fn validate(&self, spec: &SynthSpec, idx: usize) -> bool {
        let Ok(mut spec_cf) = build_cf(spec) else {
            return false;
        };
        let entry = &self.entries[idx];
        let module = format!("spec_{:016x}", entry.hash);
        audit_artifact_text(
            &entry.result.cascade,
            &entry.result.verilog,
            &module,
            &mut spec_cf,
            &format!("cache:{:016x}", entry.hash),
        )
        .is_clean()
    }

    /// Inserts a clean result, evicting the least recently used entry at
    /// capacity. No-op when `capacity` is 0 or the result is degraded.
    pub fn insert(&mut self, spec: &SynthSpec, result: &SynthResult, degraded: bool) {
        if self.capacity == 0 || degraded {
            return;
        }
        let hash = spec.hash();
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.hash == hash) {
            entry.result = result.clone();
            entry.checksum = checksum(result);
            entry.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(idx) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                self.entries.remove(idx);
                self.stats.evicted += 1;
            }
        }
        self.entries.push(Entry {
            hash,
            result: result.clone(),
            checksum: checksum(result),
            last_used: self.tick,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::execute;
    use crate::protocol::Source;

    fn tiny_spec(tag: u8) -> SynthSpec {
        // A 2-input function parameterized by `tag` so specs differ.
        let out = if tag & 1 == 0 { "1" } else { "0" };
        SynthSpec::new(Source::Pla(format!(".i 2\n.o 1\n11 {out}\n00 1\n.e\n")))
    }

    fn result_of(spec: &SynthSpec) -> SynthResult {
        execute(spec, None, None, false)
            .expect("tiny spec runs")
            .result
    }

    #[test]
    fn hit_after_insert_validates_and_serves() {
        let mut cache = ResponseCache::new(4);
        let spec = tiny_spec(0);
        assert!(cache.lookup(&spec).is_none());
        let result = result_of(&spec);
        cache.insert(&spec, &result, false);
        let hit = cache.lookup(&spec).expect("validated hit");
        assert_eq!(hit, result);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn corrupted_entries_are_evicted_not_served() {
        let mut cache = ResponseCache::new(4);
        let spec = tiny_spec(0);
        let mut result = result_of(&spec);
        cache.insert(&spec, &result, false);
        // Corrupt the stored artifact in place via a poisoned re-insert
        // (same hash, altered verilog so the audit must fail).
        result.verilog.push_str("// tampered\n");
        cache.insert(&spec, &result, false);
        assert!(
            cache.lookup(&spec).is_none(),
            "tampered entry must not serve"
        );
        assert_eq!(cache.stats().invalidated, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn degraded_results_are_not_cached() {
        let mut cache = ResponseCache::new(4);
        let spec = tiny_spec(0);
        cache.insert(&spec, &result_of(&spec), true);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = ResponseCache::new(2);
        let specs: Vec<SynthSpec> = (0..3).map(tiny_spec).collect();
        // tag 0 and 2 are distinct functions; tag 1 differs from both.
        cache.insert(&specs[0], &result_of(&specs[0]), false);
        cache.insert(&specs[1], &result_of(&specs[1]), false);
        // Touch spec 0 so spec 1 is the LRU victim.
        assert!(cache.lookup(&specs[0]).is_some());
        let third = SynthSpec::new(Source::Pla(".i 2\n.o 1\n01 1\n.e\n".into()));
        cache.insert(&third, &result_of(&third), false);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evicted, 1);
        assert!(cache.lookup(&specs[1]).is_none(), "LRU victim gone");
        assert!(cache.lookup(&third).is_some());
    }
}
