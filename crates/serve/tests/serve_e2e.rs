//! End-to-end tests against a real in-process daemon over TCP: protocol
//! round trips, the validated cache, typed overload rejections, clock-
//! driven deadline shedding, the circuit breaker, and both shutdown modes
//! (including checkpoint-shutdown → restart → byte-identical recovery).

use bddcf_serve::protocol::{
    read_frame, write_frame, ErrorCode, Request, RequestBody, Response, ShutdownMode, Source,
    Status, SynthSpec, DEFAULT_MAX_FRAME,
};
use bddcf_serve::server::{Server, ServerConfig};
use bddcf_serve::{execute, json};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("timeout");
        let read_half = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        }
    }

    fn roundtrip_raw(&mut self, payload: &[u8]) -> Vec<u8> {
        write_frame(&mut self.writer, payload).expect("send");
        read_frame(&mut self.reader, DEFAULT_MAX_FRAME)
            .expect("read")
            .expect("reply")
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let reply = self.roundtrip_raw(&request.to_bytes());
        Response::from_bytes(&reply).expect("parseable response")
    }
}

fn synth_request(id: &str, spec: SynthSpec) -> Request {
    Request {
        id: id.into(),
        body: RequestBody::Synth {
            spec,
            deadline_ms: None,
            checkpoint: false,
        },
    }
}

fn tiny_spec() -> SynthSpec {
    SynthSpec::new(Source::Pla(
        ".i 3\n.o 2\n000 11\n111 10\n010 01\n.e\n".into(),
    ))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bddcf-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls the daemon's `stats` op until `key` reaches `want` — the
/// deterministic way to wait for queue/worker state over the wire.
fn wait_for_stat(addr: SocketAddr, key: &str, want: i64) {
    let stats_req = Request {
        id: "s".into(),
        body: RequestBody::Stats,
    };
    loop {
        let reply = Client::connect(addr).roundtrip_raw(&stats_req.to_bytes());
        let value = json::parse(&reply).expect("stats json");
        let got = value
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(json::Json::as_i64)
            .expect("stat field");
        if got == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn synth_round_trip_then_cache_hit_is_byte_identical() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    let first = client.roundtrip(&synth_request("r1", tiny_spec()));
    assert_eq!(first.status, Status::Ok, "{:?}", first.error);
    assert!(!first.cached);
    let result = first.result.clone().expect("payload");
    assert!(result.verilog.contains("module"));

    // Second request for the same spec: served from the validated cache,
    // with the identical deterministic artifact portion.
    let second = client.roundtrip(&synth_request("r1", tiny_spec()));
    assert!(second.cached, "second hit must come from the cache");
    assert_eq!(second.artifact_bytes(), first.artifact_bytes());

    // Local recomputation agrees byte-for-byte too.
    let local = execute(&tiny_spec(), None, None, false).expect("local");
    assert_eq!(local.result, result);

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let ack = client.roundtrip_raw(&shutdown.to_bytes());
    assert!(String::from_utf8_lossy(&ack).contains("\"shutdown\":\"drain\""));
    let stats = server.wait();
    assert_eq!(stats.pool.completed, 1);
    assert_eq!(stats.cache.hits, 1);
}

#[test]
fn malformed_and_oversized_frames_get_typed_errors() {
    let server = Server::start(ServerConfig {
        max_frame_len: 512,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();

    let mut client = Client::connect(addr);
    let reply = client.roundtrip_raw(b"{\"id\":\"m1\",\"op\":\"wat\"}");
    let response = Response::from_bytes(&reply).expect("parse");
    assert_eq!(response.id, "m1", "the salvaged id must be echoed");
    let (code, _) = response.error.expect("error");
    assert_eq!(code, ErrorCode::Malformed);

    // Not even JSON: still a typed malformed error, id empty.
    let reply = client.roundtrip_raw(b"\x00\x01garbage");
    let response = Response::from_bytes(&reply).expect("parse");
    let (code, _) = response.error.expect("error");
    assert_eq!(code, ErrorCode::Malformed);

    // Oversized: rejected on the length prefix, then the stream closes.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    raw.write_all(&(600u32).to_le_bytes()).expect("prefix");
    raw.flush().expect("flush");
    let mut reader = BufReader::new(raw);
    let reply = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("read")
        .expect("reply");
    let response = Response::from_bytes(&reply).expect("parse");
    let (code, _) = response.error.expect("error");
    assert_eq!(code, ErrorCode::Oversized);
    assert!(
        read_frame(&mut reader, DEFAULT_MAX_FRAME)
            .expect("eof")
            .is_none(),
        "the connection must close after an oversized frame"
    );

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    server.wait();
}

#[test]
fn queue_full_rejection_is_deterministic_with_the_hold_hook() {
    let hold = Arc::new(AtomicBool::new(true));
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        hold: Some(Arc::clone(&hold)),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();

    // First request: picked up by the (held) worker on its own thread.
    let held_client = std::thread::spawn(move || {
        Client::connect(addr).roundtrip(&synth_request("held", tiny_spec()))
    });
    // Wait until the worker owns it (stats over the wire), so the queue
    // state is deterministic.
    wait_for_stat(addr, "inflight", 1);

    // A *different* spec fills the queue; once it is visibly queued, a
    // third must be rejected queue_full — no races, no sleeps.
    let mut other = tiny_spec();
    other.sift = 2;
    let queued_client = {
        let other = other.clone();
        std::thread::spawn(move || Client::connect(addr).roundtrip(&synth_request("queued", other)))
    };
    wait_for_stat(addr, "queue", 1);
    let mut third = tiny_spec();
    third.sift = 3;
    let rejected = Client::connect(addr).roundtrip(&synth_request("victim", third));
    let (code, message) = rejected.error.expect("typed");
    assert_eq!(code, ErrorCode::QueueFull);
    assert!(
        code.is_retryable(),
        "queue_full must advertise retryability"
    );
    assert!(message.contains("retry"));

    hold.store(false, Ordering::Relaxed);
    assert_eq!(held_client.join().expect("held").status, Status::Ok);
    assert_eq!(queued_client.join().expect("queued").status, Status::Ok);

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    let stats = server.wait();
    assert!(stats.pool.rejected_queue_full >= 1);
}

#[test]
fn fake_clock_deadline_sheds_queued_requests() {
    use bddcf_bdd::FakeClock;

    let clock = Arc::new(FakeClock::new());
    let hold = Arc::new(AtomicBool::new(true));
    let server = Server::start(ServerConfig {
        workers: 1,
        clock: clock.clone(),
        hold: Some(Arc::clone(&hold)),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();

    // The job is admitted with a 50 ms deadline while the worker is held;
    // the fake clock then jumps past the deadline before release, so the
    // worker's pre-check must shed it — deterministically, no sleeps.
    let request = Request {
        id: "late".into(),
        body: RequestBody::Synth {
            spec: tiny_spec(),
            deadline_ms: Some(50),
            checkpoint: false,
        },
    };
    let waiter = std::thread::spawn(move || Client::connect(addr).roundtrip(&request));
    // The held worker owns the job (deadline already fixed); now expire it.
    wait_for_stat(addr, "inflight", 1);
    clock.advance(Duration::from_millis(100));
    hold.store(false, Ordering::Relaxed);
    let response = waiter.join().expect("reply");
    let (code, message) = response.error.expect("typed");
    assert_eq!(code, ErrorCode::Deadline);
    assert!(message.contains("queued"));

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    assert_eq!(server.wait().pool.shed_deadline, 1);
}

#[test]
fn panic_probe_trips_the_breaker_over_the_wire() {
    let server = Server::start(ServerConfig {
        workers: 1,
        breaker_threshold: 2,
        breaker_cooldown: 50,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();
    let probe = || SynthSpec::new(Source::Registry("panic probe".into()));

    bddcf_check::with_quiet_panics(|| {
        for i in 0..2 {
            let response =
                Client::connect(addr).roundtrip(&synth_request(&format!("p{i}"), probe()));
            let (code, _) = response.error.expect("typed");
            assert_eq!(code, ErrorCode::Panicked, "panic is quarantined, not fatal");
        }
    });
    // Threshold reached: the breaker rejects without running anything.
    let response = Client::connect(addr).roundtrip(&synth_request("p2", probe()));
    let (code, _) = response.error.expect("typed");
    assert_eq!(code, ErrorCode::CircuitOpen);
    assert!(!code.is_retryable());

    // The daemon itself is still healthy for other specs.
    let ok = Client::connect(addr).roundtrip(&synth_request("fine", tiny_spec()));
    assert_eq!(ok.status, Status::Ok);

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    let stats = server.wait();
    assert_eq!(stats.pool.panicked, 2);
    assert!(stats.pool.rejected_breaker >= 1);
}

#[test]
fn checkpoint_shutdown_parks_and_a_restart_recovers_byte_identically() {
    let spool = temp_dir("ckpt-recover");
    let hold = Arc::new(AtomicBool::new(true));
    let server = Server::start(ServerConfig {
        workers: 1,
        spool_dir: Some(spool.clone()),
        hold: Some(Arc::clone(&hold)),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();

    // Admit a checkpointing job, hold its worker, then shut down in
    // checkpoint mode: the job must park (typed `draining` reply) and
    // leave its acceptance record spooled.
    let request = Request {
        id: "long".into(),
        body: RequestBody::Synth {
            spec: tiny_spec(),
            deadline_ms: None,
            checkpoint: true,
        },
    };
    let waiter = {
        let request = request.clone();
        std::thread::spawn(move || Client::connect(addr).roundtrip(&request))
    };
    wait_for_stat(addr, "inflight", 1);
    let shutdown = Request {
        id: "halt".into(),
        body: RequestBody::Shutdown(ShutdownMode::Checkpoint),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    hold.store(false, Ordering::Relaxed);
    let parked = waiter.join().expect("reply");
    let (code, _) = parked.error.expect("typed");
    assert_eq!(code, ErrorCode::Draining);
    let stats = server.wait();
    assert_eq!(stats.pool.parked, 1);
    let hash_hex = tiny_spec().hash_hex();
    let entry = spool.join(format!("req-{hash_hex}"));
    assert!(
        entry.join("request.json").exists(),
        "acceptance record spooled"
    );
    assert!(
        !entry.join("response.json").exists(),
        "job did not complete"
    );

    // A restarted daemon recovers the entry and completes it...
    let server = Server::start(ServerConfig {
        workers: 1,
        spool_dir: Some(spool.clone()),
        ..ServerConfig::default()
    })
    .expect("restart");
    let addr = server.local_addr();
    // ...after which the same request replays the spooled response.
    let replayed = loop {
        let response = Client::connect(addr).roundtrip(&synth_request("again", tiny_spec()));
        if response.resumed || response.cached {
            break response;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(replayed.status, Status::Ok);

    // Byte-identical to an uninterrupted local run.
    let local = execute(&tiny_spec(), None, None, false).expect("local");
    assert_eq!(replayed.result.expect("payload"), local.result);
    assert!(
        entry.join("response.json").exists(),
        "completion record spooled"
    );

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    let stats = server.wait();
    assert_eq!(stats.recovered, 1, "the spooled entry was resubmitted");
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn full_disk_degrades_serving_instead_of_killing_it() {
    use bddcf_bdd::vfs::{FaultPlan, FaultVfs, WriteFault};

    // Every storage write fails ENOSPC: no acceptance record, no
    // checkpoints, no completion record can land. The daemon must keep
    // serving — correct results, explicitly disclaimed as non-durable.
    let vfs = FaultVfs::with_plan(FaultPlan {
        fail_all_writes: true,
        fault: WriteFault::Enospc,
        ..FaultPlan::default()
    });
    let server = Server::start(ServerConfig {
        workers: 1,
        spool_dir: Some(PathBuf::from("/spool")),
        vfs: Arc::new(vfs.clone()),
        ..ServerConfig::default()
    })
    .expect("a full disk must not prevent startup");
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    let request = Request {
        id: "e1".into(),
        body: RequestBody::Synth {
            spec: tiny_spec(),
            deadline_ms: None,
            checkpoint: true,
        },
    };
    let reply = client.roundtrip_raw(&request.to_bytes());
    let first = Response::from_bytes(&reply).expect("parseable response");
    assert_eq!(first.status, Status::Ok, "{:?}", first.error);
    assert!(
        first.storage_degraded,
        "the reply must disclaim durability on a full disk"
    );
    assert!(
        String::from_utf8_lossy(&reply).contains("\"storage_degraded\":true"),
        "the disclaimer must be typed per-response metadata on the wire"
    );
    let local = execute(&tiny_spec(), None, None, false).expect("local");
    assert_eq!(
        first.result.expect("payload"),
        local.result,
        "degraded serving still returns the correct artifacts"
    );

    // A degraded result is never cached: the repeat must be recomputed
    // (and disclaimed again), not replayed from cache or spool.
    let second = client.roundtrip(&synth_request("e2", tiny_spec()));
    assert!(
        !second.cached,
        "degraded results must never enter the cache"
    );
    assert!(!second.resumed);
    assert!(second.storage_degraded);

    // The stats op exposes storage-degraded mode and its counters.
    let stats_reply = client.roundtrip_raw(
        &Request {
            id: "s".into(),
            body: RequestBody::Stats,
        }
        .to_bytes(),
    );
    let value = json::parse(&stats_reply).expect("stats json");
    let stats = value.get("stats").expect("stats object");
    assert_eq!(
        stats.get("storage_degraded").and_then(json::Json::as_bool),
        Some(true)
    );
    let counter = |key: &str| {
        stats
            .get(key)
            .and_then(json::Json::as_i64)
            .expect("counter")
    };
    assert!(counter("storage_faults") > 0, "faults must be counted");
    assert!(
        counter("storage_nondurable") >= 2,
        "both replies were accepted non-durably"
    );

    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = client.roundtrip_raw(&shutdown.to_bytes());
    let stats = server.wait();
    assert!(vfs.faults_injected() > 0, "the adversary actually fired");
    assert!(stats.storage_faults > 0);
    assert!(stats.storage_nondurable >= 2);
}

#[test]
fn torn_spool_response_is_quarantined_and_recomputed() {
    let spool = temp_dir("torn-spool");
    let server = Server::start(ServerConfig {
        workers: 1,
        spool_dir: Some(spool.clone()),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();
    let first = Client::connect(addr).roundtrip(&synth_request("t1", tiny_spec()));
    assert_eq!(first.status, Status::Ok, "{:?}", first.error);
    let shutdown = Request {
        id: "q".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    server.wait();

    // Tear the completion record in half, as a crash mid-overwrite on a
    // non-atomic filesystem would. While here: no prefix or single-byte
    // corruption of the record may panic the wire parser.
    let record = spool
        .join(format!("req-{}", tiny_spec().hash_hex()))
        .join("response.json");
    let intact = std::fs::read(&record).expect("read completion record");
    assert!(Response::from_bytes(&intact).is_ok());
    for len in (0..intact.len()).step_by(11) {
        let _ = Response::from_bytes(&intact[..len]);
    }
    for offset in (0..intact.len()).step_by(17) {
        let mut flipped = intact.clone();
        flipped[offset] ^= 0x01;
        let _ = Response::from_bytes(&flipped);
    }
    std::fs::write(&record, &intact[..intact.len() / 2]).expect("tear record");

    // A restarted daemon must quarantine the wreck, re-run the entry from
    // its acceptance record, and serve the byte-identical result.
    let server = Server::start(ServerConfig {
        workers: 1,
        spool_dir: Some(spool.clone()),
        ..ServerConfig::default()
    })
    .expect("restart on the torn spool");
    let addr = server.local_addr();
    let recovered = loop {
        let response = Client::connect(addr).roundtrip(&synth_request("t2", tiny_spec()));
        if response.resumed || response.cached {
            break response;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(recovered.status, Status::Ok);
    let local = execute(&tiny_spec(), None, None, false).expect("local");
    assert_eq!(recovered.result.expect("payload"), local.result);
    let quarantined = record.with_file_name("response.json.corrupt");
    assert!(
        quarantined.exists(),
        "the torn record must be parked under a .corrupt name"
    );
    let rewritten = std::fs::read(&record).expect("rewritten completion record");
    assert!(
        Response::from_bytes(&rewritten).is_ok(),
        "the entry must own a fresh, parseable completion record"
    );

    let _ = Client::connect(addr).roundtrip_raw(&shutdown.to_bytes());
    let stats = server.wait();
    assert!(
        stats.storage_faults >= 1,
        "the torn record must be counted as a storage fault"
    );
    assert_eq!(stats.recovered, 1, "the torn entry was re-executed");
    let _ = std::fs::remove_dir_all(&spool);
}
