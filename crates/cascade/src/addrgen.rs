//! The Fig. 8 architecture: LUT cascade + auxiliary memory + comparator.
//!
//! An *address generator* maps `k` registered `n`-bit words to the indices
//! `1..=k` and everything else to `0`. Realizing the exact function as a
//! plain cascade is expensive (the `DC=0` rows of Table 6); Fig. 8 instead:
//!
//! 1. widens the specification — every non-registered input becomes don't
//!    care (`DC` ratio `1 − k/2ⁿ`), which lets the width reductions and
//!    support-variable removal shrink the cascade dramatically;
//! 2. the shrunken cascade produces a *candidate* index;
//! 3. an auxiliary memory of `n·2^m` bits stores the registered word for
//!    each index, and a comparator outputs the index only when the stored
//!    word equals the input — otherwise `0`.
//!
//! The cascade may answer anything on non-registered inputs (those are
//! don't cares); the comparator restores exactness.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use crate::multi::MultiCascade;

/// A Fig.-8 address generator.
#[derive(Debug)]
pub struct AddressGenerator {
    cascades: MultiCascade,
    /// `stored[i]` = registered word for index `i+1`.
    stored: Vec<u64>,
    num_input_bits: usize,
    num_index_bits: usize,
}

impl AddressGenerator {
    /// Assembles the architecture from a synthesized (widened) cascade set
    /// and the registered word list (`words[i]` gets index `i+1`).
    ///
    /// # Panics
    ///
    /// Panics if the cascade's arity does not cover the words, if the index
    /// space `2^m` cannot hold `words.len() + 1` indices, or if a word does
    /// not fit `num_input_bits`.
    pub fn new(cascades: MultiCascade, words: Vec<u64>, num_input_bits: usize) -> Self {
        let num_index_bits = cascades.cascades.iter().map(|c| c.num_outputs()).sum();
        assert!(
            num_index_bits < 64 && words.len() < (1usize << num_index_bits),
            "index space too small for {} words",
            words.len()
        );
        assert!(num_input_bits <= 64);
        if num_input_bits < 64 {
            assert!(
                words.iter().all(|&w| w >> num_input_bits == 0),
                "word wider than the input space"
            );
        }
        AddressGenerator {
            cascades,
            stored: words,
            num_input_bits,
            num_index_bits,
        }
    }

    /// Number of registered words `k`.
    pub fn num_words(&self) -> usize {
        self.stored.len()
    }

    /// Index bits `m`.
    pub fn num_index_bits(&self) -> usize {
        self.num_index_bits
    }

    /// The underlying cascade set (for size accounting).
    pub fn cascades(&self) -> &MultiCascade {
        &self.cascades
    }

    /// Auxiliary memory bits: `n · 2^m` (the `AUX` column of Table 6).
    pub fn aux_memory_bits(&self) -> u64 {
        (self.num_input_bits as u64) << self.num_index_bits
    }

    /// Total memory bits: LUT cascades plus auxiliary memory.
    pub fn total_memory_bits(&self) -> u64 {
        self.cascades.memory_bits() + self.aux_memory_bits()
    }

    /// Looks up a word: its index `1..=k` if registered, else `0`.
    pub fn lookup(&self, word: u64) -> u64 {
        let input: Vec<bool> = (0..self.num_input_bits)
            .map(|i| word >> i & 1 == 1)
            .collect();
        let candidate = self.cascades.eval(&input);
        if candidate == 0 || candidate > self.stored.len() as u64 {
            return 0;
        }
        // Auxiliary memory + comparator.
        if self.stored[(candidate - 1) as usize] == word {
            candidate
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::synthesize_partitioned;
    use crate::synth::CascadeOptions;
    use bddcf_bdd::FALSE;
    use bddcf_core::{CfLayout, IsfBdds};

    /// Builds the widened ISF of a small word list: word `words[i]` maps to
    /// index `i+1`; everything else is don't care.
    fn word_list_isf(
        words: &[u64],
        n: usize,
        m: usize,
    ) -> (bddcf_bdd::BddManager, CfLayout, IsfBdds) {
        let layout = CfLayout::new(n, m);
        let mut mgr = layout.new_manager();
        let input_vars = layout.input_vars();
        let mut on = vec![FALSE; m];
        let mut dc = Vec::with_capacity(m);
        let any = mgr.from_minterms(&input_vars, words);
        let not_word = mgr.not(any);
        for (j, on_j) in on.iter_mut().enumerate() {
            let minterms: Vec<u64> = words
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + 1) as u64 >> j & 1 == 1)
                .map(|(_, &w)| w)
                .collect();
            *on_j = mgr.from_minterms(&input_vars, &minterms);
            dc.push(not_word);
        }
        let isf = IsfBdds::from_on_dc(&mut mgr, on, dc);
        (mgr, layout, isf)
    }

    #[test]
    fn address_generator_is_exact() {
        // 6 registered 8-bit words.
        let words = vec![0x13u64, 0x2a, 0x41, 0x77, 0xe0, 0xff];
        let (mgr, layout, isf) = word_list_isf(&words, 8, 3);
        let multi = synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..3],
            &CascadeOptions {
                max_cell_inputs: 6,
                max_cell_outputs: 5,
                ..CascadeOptions::default()
            },
            |cf| {
                cf.reduce_support_variables();
                cf.reduce_alg33_default();
            },
        );
        let gen = AddressGenerator::new(multi, words.clone(), 8);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(gen.lookup(w), (i + 1) as u64, "registered word {w:#x}");
        }
        // Every non-registered word must map to 0 — exhaustively.
        for w in 0..256u64 {
            if !words.contains(&w) {
                assert_eq!(gen.lookup(w), 0, "unregistered word {w:#x}");
            }
        }
    }

    #[test]
    fn memory_accounting() {
        let words = vec![1u64, 2, 3];
        let (mgr, layout, isf) = word_list_isf(&words, 6, 2);
        let multi = synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..2],
            &CascadeOptions::default(),
            |_| {},
        );
        let gen = AddressGenerator::new(multi, words, 6);
        assert_eq!(gen.aux_memory_bits(), 6 * 4);
        assert_eq!(gen.total_memory_bits(), gen.cascades().memory_bits() + 24);
        assert_eq!(gen.num_index_bits(), 2);
        assert_eq!(gen.num_words(), 3);
    }

    #[test]
    fn widening_shrinks_the_cascade() {
        // Same list realized exactly (output 0 for non-words) vs widened.
        let words = vec![0x05u64, 0x4c, 0x93, 0xf1];
        let n = 8;
        let m = 3;
        // Exact: dc = FALSE, off = complement.
        let layout = CfLayout::new(n, m);
        let mut mgr = layout.new_manager();
        let input_vars = layout.input_vars();
        let mut on = Vec::new();
        for j in 0..m {
            let minterms: Vec<u64> = words
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + 1) >> j & 1 == 1)
                .map(|(_, &w)| w)
                .collect();
            on.push(mgr.from_minterms(&input_vars, &minterms));
        }
        let exact_isf = IsfBdds::from_on_dc(&mut mgr, on, vec![FALSE; m]);
        let opts = CascadeOptions {
            max_cell_inputs: 6,
            max_cell_outputs: 5,
            ..CascadeOptions::default()
        };
        let prepare = |cf: &mut Cf2| {
            cf.reduce_support_variables();
            cf.reduce_alg33_default();
        };
        type Cf2 = bddcf_core::Cf;
        let exact = synthesize_partitioned(&mgr, &layout, &exact_isf, &[0..m], &opts, prepare);
        let (wmgr, wlayout, wisf) = word_list_isf(&words, n, m);
        let widened = synthesize_partitioned(&wmgr, &wlayout, &wisf, &[0..m], &opts, prepare);
        assert!(
            widened.memory_bits() <= exact.memory_bits(),
            "widened {} > exact {}",
            widened.memory_bits(),
            exact.memory_bits()
        );
    }
}
