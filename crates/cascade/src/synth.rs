//! Cascade synthesis: segmenting a BDD_for_CF into LUT cells.
//!
//! The variable order of the [`Cf`] is scanned top-down and split into
//! consecutive level groups. Group `i` becomes cell `i`: its address is the
//! rail code at the group's top cut plus the primary inputs inside the
//! group; its word is the primary outputs inside the group plus the rail
//! code at the bottom cut. Rail codes enumerate the column functions at the
//! cut — `⌈log₂ W⌉` bits by Theorem 3.1.
//!
//! Cell tables are *materialized* by walking the BDD segment for every
//! (rail code, input combination). At an output-variable node the emitted
//! bit is forced when one edge is constant 0 (the Fig. 1 invariant, see
//! [`Cf::output_nodes_well_formed`](bddcf_core::Cf::output_nodes_well_formed));
//! under interleaved orders both edges can be satisfiable, and the
//! liveness-validated choice map
//! ([`Cf::cascade_output_choices`](bddcf_core::Cf::cascade_output_choices))
//! fixes the edge a cell may hard-wire. Output variables absent from a
//! path are don't cares realized as 0, and table entries whose walk dies
//! are unreachable at run time (hardware don't cares).

#![allow(clippy::needless_range_loop)] // cut indices mirror the level arithmetic
use crate::cell::LutCell;
use bddcf_bdd::hasher::{FastMap, FastSet};
use bddcf_bdd::{Error as BudgetError, NodeId, FALSE, TRUE};
use bddcf_core::degrade::{DegradationReport, DegradeAction, Phase};
use bddcf_core::{Cf, ChoiceError, Role};
use bddcf_decomp::bdd_decomp::rails_for;
use std::fmt;

/// How the level range is split into cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Segmentation {
    /// Greedy: every cell takes as many levels as fit. Fast; can be
    /// suboptimal because a shorter cell sometimes enables a cheaper rest.
    Greedy,
    /// Dynamic programming over cut positions: minimizes the cell count,
    /// breaking ties by total memory bits.
    #[default]
    MinCells,
}

/// Cell size constraints. The paper's Table 6 uses cells with at most 12
/// address bits and 10 word bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CascadeOptions {
    /// Maximum cell address bits (incoming rails + primary inputs).
    pub max_cell_inputs: usize,
    /// Maximum cell word bits (outgoing rails + primary outputs).
    pub max_cell_outputs: usize,
    /// Segmentation strategy.
    pub segmentation: Segmentation,
}

impl Default for CascadeOptions {
    fn default() -> Self {
        CascadeOptions {
            max_cell_inputs: 12,
            max_cell_outputs: 10,
            segmentation: Segmentation::MinCells,
        }
    }
}

/// Why a function cannot be realized as a single cascade under the given
/// constraints (the caller should partition the outputs and retry — see
/// [`crate::multi`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// No feasible segment starts at this cut: the incoming rails plus one
    /// more level already violate a constraint.
    NoFeasibleSegment {
        /// The cut level the segmentation was stuck at.
        level: usize,
        /// The rail count entering that cut.
        rails_in: usize,
    },
    /// An output node has two satisfiable children and neither covers the
    /// node's live inputs: no single cell-table entry is valid for every
    /// continuation (see [`Cf::cascade_output_choices`]).
    OutputEntangled,
    /// The manager's installed [`Budget`](bddcf_bdd::Budget) ran out during
    /// the liveness analysis that validates output-edge choices. The `Cf`
    /// is untouched; retry after a GC, with a larger budget, or via
    /// [`synthesize_governed`], which degrades instead of failing.
    Budget(BudgetError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoFeasibleSegment { level, rails_in } => write!(
                f,
                "no feasible cell starting at level {level} with {rails_in} incoming rails"
            ),
            SynthesisError::OutputEntangled => write!(
                f,
                "an output is entangled below its level: no fixed cell choice covers all continuations"
            ),
            SynthesisError::Budget(e) => {
                write!(f, "budget exhausted during cascade synthesis: {e}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// A synthesized LUT cascade realizing one (partition of a) multiple-output
/// function.
#[derive(Clone, Debug)]
pub struct Cascade {
    cells: Vec<LutCell>,
    num_inputs: usize,
    num_outputs: usize,
}

impl Cascade {
    /// Assembles a cascade from pre-built cells (e.g. loaded from disk),
    /// validating the structural invariants synthesis would have
    /// guaranteed.
    ///
    /// # Errors
    ///
    /// Returns a description when the rail widths of adjacent cells
    /// disagree, the chain does not start/end with zero rails, a primary
    /// id is out of range, or an output is produced more than once.
    // xlint: allow(XL104): `produced[id]` is guarded by the `id >= num_outputs` rejection immediately above
    pub fn from_cells(
        cells: Vec<LutCell>,
        num_inputs: usize,
        num_outputs: usize,
    ) -> Result<Cascade, String> {
        if cells.is_empty() {
            return Err("a cascade needs at least one cell".into());
        }
        let mut rails = 0usize;
        let mut produced = vec![false; num_outputs];
        for (i, cell) in cells.iter().enumerate() {
            if cell.rails_in() != rails {
                return Err(format!(
                    "cell {i} expects {} incoming rails but the chain provides {rails}",
                    cell.rails_in()
                ));
            }
            for &id in cell.input_ids() {
                if id >= num_inputs {
                    return Err(format!("cell {i} reads input {id} (only {num_inputs})"));
                }
            }
            for &id in cell.output_ids() {
                if id >= num_outputs {
                    return Err(format!("cell {i} drives output {id} (only {num_outputs})"));
                }
                if std::mem::replace(&mut produced[id], true) {
                    return Err(format!("output {id} driven by more than one cell"));
                }
            }
            rails = cell.rails_out();
        }
        if rails != 0 {
            return Err(format!("the last cell leaves {rails} dangling rails"));
        }
        if let Some(missing) = produced.iter().position(|&p| !p) {
            return Err(format!("output {missing} driven by no cell"));
        }
        Ok(Cascade {
            cells,
            num_inputs,
            num_outputs,
        })
    }

    /// The cells, head first.
    pub fn cells(&self) -> &[LutCell] {
        &self.cells
    }

    /// This cascade with hardware no-op cells ([`LutCell::is_noop`])
    /// removed. A no-op cell has no incoming rails and no word bits, so
    /// dropping it preserves the realized function and the rail chain;
    /// the Verilog emitter produces exactly this cascade's cell list.
    /// When every cell is a no-op the cascade is returned unchanged (a
    /// cascade must keep at least one cell).
    pub fn without_noop_cells(&self) -> Cascade {
        let live: Vec<LutCell> = self
            .cells
            .iter()
            .filter(|c| !c.is_noop())
            .cloned()
            .collect();
        if live.is_empty() {
            return self.clone();
        }
        Cascade {
            cells: live,
            num_inputs: self.num_inputs,
            num_outputs: self.num_outputs,
        }
    }

    /// Number of cells (`#Cel` in Table 6).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total LUT output bits over all cells (`#LUT` in Table 6).
    pub fn lut_outputs(&self) -> usize {
        self.cells.iter().map(LutCell::num_outputs).sum()
    }

    /// Total memory bits over all cells.
    pub fn memory_bits(&self) -> u64 {
        self.cells.iter().map(LutCell::memory_bits).sum()
    }

    /// Widest rail bundle between adjacent cells.
    pub fn max_rails(&self) -> usize {
        self.cells.iter().map(LutCell::rails_out).max().unwrap_or(0)
    }

    /// Number of primary inputs of the realized function.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs of the realized function.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Simulates the cascade: `input[i]` is primary input `i`; the result
    /// packs primary output `j` into bit `j`.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong arity.
    // xlint: allow(XL104): input arity is asserted on entry; the panic is the documented contract of this debug helper
    pub fn eval(&self, input: &[bool]) -> u64 {
        assert_eq!(input.len(), self.num_inputs, "input arity mismatch");
        let mut rail = 0u64;
        let mut word = 0u64;
        for cell in &self.cells {
            let cell_inputs: Vec<bool> = cell.input_ids().iter().map(|&i| input[i]).collect();
            let (outs, rail_out) = cell.lookup(rail, &cell_inputs);
            for (k, &j) in cell.output_ids().iter().enumerate() {
                if outs >> k & 1 == 1 {
                    word |= 1 << j;
                }
            }
            rail = rail_out;
        }
        word
    }
}

/// The distinct non-zero nodes hanging below `cut` (the rail alphabet),
/// sorted by node id for stable code assignment.
fn columns_at(cf: &Cf, cut: u32) -> Vec<NodeId> {
    let mgr = cf.manager();
    let root = cf.root();
    let mut set: FastSet<NodeId> = FastSet::default();
    if mgr.level_of_node(root) >= cut && root != FALSE {
        set.insert(root);
    }
    for n in mgr.descendants(&[root]) {
        if mgr.level_of_node(n) >= cut {
            continue;
        }
        for child in [mgr.lo(n), mgr.hi(n)] {
            if child != FALSE && mgr.level_of_node(child) >= cut {
                set.insert(child);
            }
        }
    }
    let mut columns: Vec<NodeId> = set.into_iter().collect();
    columns.sort_unstable();
    columns
}

/// Synthesizes `cf` into a single LUT cascade under `options`.
///
/// Returns [`SynthesisError`] when even a one-level cell is infeasible at
/// some cut — partition the outputs then
/// ([`crate::multi::synthesize_partitioned`]).
///
/// # Example
///
/// ```
/// use bddcf_cascade::{synthesize, CascadeOptions};
/// use bddcf_core::Cf;
/// use bddcf_logic::TruthTable;
///
/// let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
/// let cascade = synthesize(&mut cf, &CascadeOptions {
///     max_cell_inputs: 4,
///     max_cell_outputs: 4,
///     ..CascadeOptions::default()
/// }).unwrap();
/// // The hardware model computes exactly what the BDD walk computes.
/// let input = [true, false, true, false];
/// assert_eq!(cascade.eval(&input), cf.eval_completed(&input));
/// ```
pub fn synthesize(cf: &mut Cf, options: &CascadeOptions) -> Result<Cascade, SynthesisError> {
    let choices = cf.try_cascade_output_choices().map_err(|e| match e {
        ChoiceError::Entangled(_) => SynthesisError::OutputEntangled,
        ChoiceError::Budget(b) => SynthesisError::Budget(b),
    })?;
    synthesize_with_choices(cf, options, &choices)
}

/// Budget-governed [`synthesize`]: consumes (and extends) the
/// [`DegradationReport`] of the reduction pipeline, so that a partially
/// reduced χ still yields a correct — just wider — cascade.
///
/// The only allocating step of synthesis is the output-choice liveness
/// analysis; everything after it walks the BDD read-only. The ladder on a
/// node-quota miss there is: GC + retry once, then complete the analysis
/// with the budget suspended (it is linear in the output nodes of χ),
/// recording the overrun as
/// [`CompletedUnbudgeted`](DegradeAction::CompletedUnbudgeted). Terminal
/// causes (step/time/cancel, and a manager poisoned by a caught panic —
/// `Error::Poisoned` — which is terminal like a cancellation) are returned
/// as [`SynthesisError::Budget`]; a cancellation must win even here.
pub fn synthesize_governed(
    cf: &mut Cf,
    options: &CascadeOptions,
    report: &mut DegradationReport,
) -> Result<Cascade, SynthesisError> {
    let choices = match cf.try_cascade_output_choices() {
        Ok(choices) => choices,
        Err(ChoiceError::Entangled(_)) => return Err(SynthesisError::OutputEntangled),
        Err(ChoiceError::Budget(cause @ BudgetError::NodeLimit { .. })) => {
            report.record(Phase::CascadeSynthesis, None, DegradeAction::GcRetry, cause);
            cf.collect();
            match cf.try_cascade_output_choices() {
                Ok(choices) => choices,
                Err(ChoiceError::Entangled(_)) => return Err(SynthesisError::OutputEntangled),
                Err(ChoiceError::Budget(cause @ BudgetError::NodeLimit { .. })) => {
                    report.record(
                        Phase::CascadeSynthesis,
                        None,
                        DegradeAction::CompletedUnbudgeted,
                        cause,
                    );
                    match cf.cascade_output_choices() {
                        Ok(choices) => choices,
                        Err(_) => return Err(SynthesisError::OutputEntangled),
                    }
                }
                Err(ChoiceError::Budget(cause)) => return Err(SynthesisError::Budget(cause)),
            }
        }
        Err(ChoiceError::Budget(cause)) => return Err(SynthesisError::Budget(cause)),
    };
    synthesize_with_choices(cf, options, &choices)
}

/// The read-only remainder of synthesis: segmentation and cell
/// materialization, given a validated choice map.
// xlint: allow(XL104): all indices are cut positions in `0..=t` over vectors allocated with length `t + 1` in this function
fn synthesize_with_choices(
    cf: &mut Cf,
    options: &CascadeOptions,
    choices: &FastMap<NodeId, bool>,
) -> Result<Cascade, SynthesisError> {
    let cf = &*cf;
    let layout = cf.layout();
    let mgr = cf.manager();
    let t = layout.num_vars();

    // Rail widths at every cut.
    let mut rails_at = Vec::with_capacity(t + 1);
    let mut columns_cache: Vec<Option<Vec<NodeId>>> = vec![None; t + 1];
    for cut in 0..=t {
        let cols = columns_at(cf, cut as u32);
        rails_at.push(rails_for(cols.len().max(1)));
        columns_cache[cut] = Some(cols);
    }

    // Enumerate the feasible segments [s, e) and their memory cost.
    let feasible = |s: usize| -> Vec<(usize, u64)> {
        let mut inputs_in_segment = 0usize;
        let mut outputs_in_segment = 0usize;
        let mut out = Vec::new();
        for e in s + 1..=t {
            match layout.role(mgr.var_at((e - 1) as u32)) {
                Role::Input(_) => inputs_in_segment += 1,
                Role::Output(_) => outputs_in_segment += 1,
            }
            if rails_at[s] + inputs_in_segment > options.max_cell_inputs {
                break; // inputs only grow with e
            }
            let rails_out = if e == t { 0 } else { rails_at[e] };
            if rails_out + outputs_in_segment <= options.max_cell_outputs {
                let address_bits = rails_at[s] + inputs_in_segment;
                let word_bits = (rails_out + outputs_in_segment) as u64;
                out.push((e, (1u64 << address_bits) * word_bits));
            }
        }
        out
    };

    let boundaries = match options.segmentation {
        Segmentation::Greedy => {
            let mut boundaries = vec![0usize];
            let mut s = 0usize;
            while s < t {
                let Some(&(e, _)) = feasible(s).last() else {
                    return Err(SynthesisError::NoFeasibleSegment {
                        level: s,
                        rails_in: rails_at[s],
                    });
                };
                boundaries.push(e);
                s = e;
            }
            boundaries
        }
        Segmentation::MinCells => {
            // dp[s] = (cells, memory) of the best segmentation of s..t.
            const INFEASIBLE: (usize, u64) = (usize::MAX, u64::MAX);
            let mut dp = vec![INFEASIBLE; t + 1];
            let mut next = vec![usize::MAX; t + 1];
            dp[t] = (0, 0);
            for s in (0..t).rev() {
                for (e, cell_memory) in feasible(s) {
                    if dp[e] == INFEASIBLE {
                        continue;
                    }
                    let candidate = (dp[e].0 + 1, dp[e].1 + cell_memory);
                    if candidate < dp[s] {
                        dp[s] = candidate;
                        next[s] = e;
                    }
                }
            }
            if dp[0] == INFEASIBLE {
                // Report the first stuck cut for diagnosis.
                let level = (0..t).find(|&s| feasible(s).is_empty()).unwrap_or(0);
                return Err(SynthesisError::NoFeasibleSegment {
                    level,
                    rails_in: rails_at[level],
                });
            }
            let mut boundaries = vec![0usize];
            let mut s = 0usize;
            while s < t {
                s = next[s];
                boundaries.push(s);
            }
            boundaries
        }
    };

    // Materialize the cells.
    let mut cells = Vec::with_capacity(boundaries.len() - 1);
    for w in boundaries.windows(2) {
        let (s, e) = (w[0], w[1]);
        cells.push(extract_cell(
            cf,
            s,
            e,
            columns_cache[s].as_ref().expect("cached"),
            if e == t {
                &[]
            } else {
                columns_cache[e].as_ref().expect("cached")
            },
            choices,
        ));
    }
    Ok(Cascade {
        cells,
        num_inputs: layout.num_inputs(),
        num_outputs: layout.num_outputs(),
    })
}

// xlint: allow(XL104): indices range over lengths of the column/table vectors computed in the same function
fn extract_cell(
    cf: &Cf,
    s: usize,
    e: usize,
    in_columns: &[NodeId],
    out_columns: &[NodeId],
    choices: &FastMap<NodeId, bool>,
) -> LutCell {
    let mgr = cf.manager();
    let layout = cf.layout();
    let rails_in = rails_for(in_columns.len().max(1));
    let rails_out = rails_for(out_columns.len().max(1));

    // Primary inputs/outputs inside the segment, in level order.
    let mut input_ids = Vec::new();
    let mut output_ids = Vec::new();
    let mut level_to_input_slot: FastMap<u32, usize> = FastMap::default();
    let mut output_slot_of_id: FastMap<usize, usize> = FastMap::default();
    for level in s..e {
        match layout.role(mgr.var_at(level as u32)) {
            Role::Input(i) => {
                level_to_input_slot.insert(level as u32, input_ids.len());
                input_ids.push(i);
            }
            Role::Output(j) => {
                output_slot_of_id.insert(j, output_ids.len());
                output_ids.push(j);
            }
        }
    }
    let out_code_of: FastMap<NodeId, u64> = out_columns
        .iter()
        .enumerate()
        .map(|(c, &n)| (n, c as u64))
        .collect();

    let address_bits = rails_in + input_ids.len();
    let mut table = vec![0u64; 1 << address_bits];
    for code in 0..in_columns.len() as u64 {
        for combo in 0..1u64 << input_ids.len() {
            let mut cur = in_columns[code as usize];
            let mut out_bits = 0u64;
            while cur != FALSE && mgr.level_of_node(cur) < e as u32 {
                let level = mgr.level_of_node(cur);
                match layout.role(mgr.var_of(cur)) {
                    Role::Input(_) => {
                        let slot = level_to_input_slot[&level];
                        cur = if combo >> slot & 1 == 1 {
                            mgr.hi(cur)
                        } else {
                            mgr.lo(cur)
                        };
                    }
                    Role::Output(j) => {
                        let lo = mgr.lo(cur);
                        let hi = mgr.hi(cur);
                        let take_hi = if lo == FALSE {
                            true
                        } else if hi == FALSE {
                            false
                        } else {
                            // Both satisfiable: use the liveness-validated
                            // choice computed up front.
                            choices[&cur]
                        };
                        if take_hi {
                            out_bits |= 1 << output_slot_of_id[&j];
                            cur = hi;
                        } else {
                            cur = lo;
                        }
                    }
                }
            }
            // A dead walk means this (rail, combo) pair can never occur at
            // run time (the rail delivered for a real input is always a
            // column live at that input); the entry is a hardware don't
            // care and stays 0.
            if cur == FALSE {
                continue;
            }
            let out_code = if out_columns.is_empty() {
                debug_assert_eq!(cur, TRUE, "final segment must end in constant 1");
                0
            } else {
                out_code_of[&cur]
            };
            let address = code | (combo << rails_in);
            table[address as usize] = out_bits | (out_code << output_ids.len());
        }
    }
    LutCell::new(rails_in, input_ids, rails_out, output_ids, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_bdd::Var;
    use bddcf_core::{CfLayout, IsfBdds};
    use bddcf_logic::TruthTable;

    fn paper_cf() -> Cf {
        let table = TruthTable::paper_table1();
        Cf::build_with_order(
            CfLayout::new(4, 2),
            &[Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)],
            |mgr, layout| IsfBdds::from_truth_table(mgr, layout, &table),
        )
    }

    fn tiny_cells() -> CascadeOptions {
        CascadeOptions {
            max_cell_inputs: 3,
            max_cell_outputs: 3,
            ..CascadeOptions::default()
        }
    }

    #[test]
    fn cascade_matches_walk_evaluation() {
        let mut cf = paper_cf();
        let cascade = synthesize(&mut cf, &tiny_cells()).expect("paper example fits tiny cells");
        assert!(cascade.num_cells() >= 2, "tiny cells force a real chain");
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            assert_eq!(cascade.eval(&input), cf.eval_completed(&input), "row {r}");
        }
    }

    #[test]
    fn cascade_realizes_spec_after_reduction() {
        let table = TruthTable::paper_table1();
        let mut cf = paper_cf();
        cf.reduce_alg33_default();
        let cascade = synthesize(&mut cf, &tiny_cells()).expect("reduced example fits");
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let word = cascade.eval(&input);
            assert!(
                (0..2).all(|j| table.get(r, j).admits(word >> j & 1 == 1)),
                "row {r} word {word:02b}"
            );
        }
    }

    #[test]
    fn width_reduction_shrinks_the_cascade() {
        let mut reduced = paper_cf();
        reduced.reduce_alg33_default();
        let plain = synthesize(&mut paper_cf(), &tiny_cells()).unwrap();
        let small = synthesize(&mut reduced, &tiny_cells()).unwrap();
        assert!(small.memory_bits() <= plain.memory_bits());
        assert!(small.max_rails() <= plain.max_rails());
    }

    #[test]
    fn one_big_cell_when_constraints_allow() {
        let mut cf = paper_cf();
        let cascade = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 16,
                max_cell_outputs: 16,
                ..CascadeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(cascade.num_cells(), 1);
        let cell = &cascade.cells()[0];
        assert_eq!(cell.rails_in(), 0);
        assert_eq!(cell.rails_out(), 0);
        assert_eq!(cell.input_ids().len(), 4);
        assert_eq!(cell.output_ids().len(), 2);
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            assert_eq!(cascade.eval(&input), cf.eval_completed(&input));
        }
    }

    #[test]
    fn infeasible_constraints_are_reported() {
        let mut cf = paper_cf(); // max width 8 -> 3 rails somewhere
        let err = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 3,
                max_cell_outputs: 1,
                ..CascadeOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::NoFeasibleSegment { .. }));
        assert!(err.to_string().contains("no feasible cell"));
    }

    #[test]
    fn memory_accounting_sums_cells() {
        let mut cf = paper_cf();
        let cascade = synthesize(&mut cf, &tiny_cells()).unwrap();
        let by_hand: u64 = cascade.cells().iter().map(|c| c.memory_bits()).sum();
        assert_eq!(cascade.memory_bits(), by_hand);
        let outs: usize = cascade.cells().iter().map(|c| c.num_outputs()).sum();
        assert_eq!(cascade.lut_outputs(), outs);
    }

    #[test]
    fn min_cells_never_worse_than_greedy() {
        for (max_in, max_out) in [(3, 3), (4, 4), (6, 4)] {
            let base = CascadeOptions {
                max_cell_inputs: max_in,
                max_cell_outputs: max_out,
                ..CascadeOptions::default()
            };
            let greedy = synthesize(
                &mut paper_cf(),
                &CascadeOptions {
                    segmentation: Segmentation::Greedy,
                    ..base
                },
            );
            let dp = synthesize(
                &mut paper_cf(),
                &CascadeOptions {
                    segmentation: Segmentation::MinCells,
                    ..base
                },
            );
            match (greedy, dp) {
                (Ok(g), Ok(d)) => {
                    assert!(d.num_cells() <= g.num_cells(), "cells ({max_in},{max_out})");
                    // Both must still realize the function identically.
                    let cf = paper_cf();
                    for r in 0..16usize {
                        let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
                        assert_eq!(g.eval(&input), cf.eval_completed(&input));
                        assert_eq!(d.eval(&input), cf.eval_completed(&input));
                    }
                }
                (Err(_), Err(_)) => {} // both infeasible is consistent
                (Ok(_), Err(e)) => panic!("DP failed where greedy succeeded: {e}"),
                (Err(_), Ok(_)) => {} // DP may succeed where greedy gets stuck
            }
        }
    }

    #[test]
    fn every_primary_signal_appears_exactly_once() {
        let mut cf = paper_cf();
        let cascade = synthesize(&mut cf, &tiny_cells()).unwrap();
        let mut inputs: Vec<usize> = cascade
            .cells()
            .iter()
            .flat_map(|c| c.input_ids().to_vec())
            .collect();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![0, 1, 2, 3]);
        let mut outputs: Vec<usize> = cascade
            .cells()
            .iter()
            .flat_map(|c| c.output_ids().to_vec())
            .collect();
        outputs.sort_unstable();
        assert_eq!(outputs, vec![0, 1]);
    }
}
