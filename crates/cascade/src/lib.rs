//! LUT cascade synthesis from BDD_for_CFs and the auxiliary-memory
//! address-generator architecture (Fig. 8 of the paper).
//!
//! An LUT cascade realizes a multiple-output function as a chain of memory
//! cells: cell `i` receives the *rails* from cell `i-1` plus a group of
//! primary inputs, and produces the rails for cell `i+1` plus the primary
//! outputs whose variables fall inside its group. By Theorem 3.1 the rail
//! count at a cut is `⌈log₂ W⌉` for the BDD_for_CF width `W` there —
//! shrinking widths (crate `bddcf-core`) is what shrinks cascades.
//!
//! * [`cell`] — materialized LUT cells with explicit tables and memory-bit
//!   accounting.
//! * [`synth`] — greedy segmentation of a [`Cf`](bddcf_core::Cf) into cells
//!   under (inputs ≤ K, outputs ≤ L) constraints, table extraction, and
//!   bit-accurate cascade simulation.
//! * [`multi`] — output-partitioned realizations: recursive bisection of
//!   the output set until every group fits a single cascade (the `#Cas`
//!   column of Table 6).
//! * [`addrgen`] — the Fig. 8 architecture: a cascade computes a candidate
//!   index, an auxiliary `2^m × n` memory plus comparator rejects
//!   non-members.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addrgen;
pub mod cell;
pub mod multi;
pub mod synth;

pub use addrgen::AddressGenerator;
pub use cell::LutCell;
pub use multi::{
    synthesize_partitioned, synthesize_partitioned_governed, try_synthesize_partitioned,
    MultiCascade,
};
pub use synth::{
    synthesize, synthesize_governed, Cascade, CascadeOptions, Segmentation, SynthesisError,
};
