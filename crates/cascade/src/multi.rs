//! Output-partitioned cascade realizations.
//!
//! When a function's BDD_for_CF is too wide for one cascade (more rails
//! than the cell constraints allow), the outputs are partitioned and each
//! group gets its own cascade — the paper's §5.1 uses a bi-partition
//! throughout Table 4, and Table 6's `DC=0` word lists need as many as 12
//! cascades. This module starts from the requested partition and keeps
//! bisecting any group that fails to synthesize.

#![allow(clippy::single_range_in_vec_init)] // the API genuinely takes lists of ranges
use crate::synth::{synthesize, synthesize_governed, Cascade, CascadeOptions};
use bddcf_bdd::BddManager;
use bddcf_core::degrade::DegradationReport;
use bddcf_core::partition::partition_outputs;
use bddcf_core::{Cf, CfLayout, IsfBdds};
use std::ops::Range;

/// A set of cascades jointly realizing a multiple-output function.
#[derive(Debug)]
pub struct MultiCascade {
    /// The cascades, one per final output group.
    pub cascades: Vec<Cascade>,
    /// The output range (in the original numbering) each cascade produces.
    pub ranges: Vec<Range<usize>>,
    /// The reduced `Cf` each cascade was synthesized from (kept for
    /// inspection: widths, node counts, removed variables).
    pub parts: Vec<Cf>,
}

impl MultiCascade {
    /// Number of cascades (`#Cas` in Table 6).
    pub fn num_cascades(&self) -> usize {
        self.cascades.len()
    }

    /// Total cells over all cascades (`#Cel`).
    pub fn num_cells(&self) -> usize {
        self.cascades.iter().map(Cascade::num_cells).sum()
    }

    /// Total LUT output bits over all cascades (`#LUT`).
    pub fn lut_outputs(&self) -> usize {
        self.cascades.iter().map(Cascade::lut_outputs).sum()
    }

    /// Total LUT memory bits over all cascades.
    pub fn memory_bits(&self) -> u64 {
        self.cascades.iter().map(Cascade::memory_bits).sum()
    }

    /// Evaluates all cascades and reassembles the full output word in the
    /// original output numbering.
    pub fn eval(&self, input: &[bool]) -> u64 {
        let mut word = 0u64;
        for (cascade, range) in self.cascades.iter().zip(&self.ranges) {
            let part = cascade.eval(input);
            word |= part << range.start;
        }
        word
    }
}

/// Fallible variant of [`synthesize_partitioned`]: returns the offending
/// single-output range and error instead of panicking, so callers can
/// retry with relaxed cell constraints.
///
/// # Errors
///
/// The first single-output group that cannot be synthesized under
/// `options`, with the [`SynthesisError`](crate::SynthesisError) that
/// stopped it.
pub fn try_synthesize_partitioned(
    mgr: &BddManager,
    layout: &CfLayout,
    isf: &IsfBdds,
    initial_parts: &[Range<usize>],
    options: &CascadeOptions,
    mut prepare: impl FnMut(&mut Cf),
) -> Result<MultiCascade, (Range<usize>, crate::SynthesisError)> {
    let mut queue: Vec<Range<usize>> = initial_parts.to_vec();
    let mut done: Vec<(Range<usize>, Cf, Cascade)> = Vec::new();
    while let Some(range) = queue.pop() {
        let mut part = partition_outputs(mgr, layout, isf, std::slice::from_ref(&range))
            .pop()
            .expect("one range in, one part out");
        prepare(&mut part);
        match synthesize(&mut part, options) {
            Ok(cascade) => done.push((range, part, cascade)),
            Err(err) => {
                if range.len() == 1 {
                    return Err((range, err));
                }
                let mid = range.start + range.len().div_ceil(2);
                queue.push(range.start..mid);
                queue.push(mid..range.end);
            }
        }
    }
    done.sort_by_key(|(range, _, _)| range.start);
    Ok(assemble(done))
}

/// Budget-governed [`try_synthesize_partitioned`]: each group's `prepare`
/// callback receives the shared [`DegradationReport`] (install a budget on
/// the part's manager and run the governed reductions there), and synthesis
/// itself degrades via [`synthesize_governed`] instead of failing on a
/// node-quota miss. Groups that fail for *capacity* reasons are bisected as
/// usual; a budget error on a single-output group is returned to the
/// caller.
///
/// # Errors
///
/// The first single-output group that cannot be synthesized, with the
/// [`SynthesisError`](crate::SynthesisError) that stopped it.
pub fn synthesize_partitioned_governed(
    mgr: &BddManager,
    layout: &CfLayout,
    isf: &IsfBdds,
    initial_parts: &[Range<usize>],
    options: &CascadeOptions,
    mut prepare: impl FnMut(&mut Cf, &mut DegradationReport),
    report: &mut DegradationReport,
) -> Result<MultiCascade, (Range<usize>, crate::SynthesisError)> {
    let mut queue: Vec<Range<usize>> = initial_parts.to_vec();
    let mut done: Vec<(Range<usize>, Cf, Cascade)> = Vec::new();
    while let Some(range) = queue.pop() {
        let mut part = partition_outputs(mgr, layout, isf, std::slice::from_ref(&range))
            .pop()
            .expect("one range in, one part out");
        prepare(&mut part, report);
        match synthesize_governed(&mut part, options, report) {
            Ok(cascade) => done.push((range, part, cascade)),
            Err(err) => {
                if range.len() == 1 {
                    return Err((range, err));
                }
                let mid = range.start + range.len().div_ceil(2);
                queue.push(range.start..mid);
                queue.push(mid..range.end);
            }
        }
    }
    done.sort_by_key(|(range, _, _)| range.start);
    Ok(assemble(done))
}

/// Synthesizes a partitioned realization.
///
/// `prepare` is run on each group's [`Cf`] before synthesis — this is where
/// the width reductions go (sifting, Algorithm 3.1/3.3, support-variable
/// removal), exactly like the paper prepares each output half separately.
/// Groups that still fail to synthesize are bisected and re-prepared until
/// every group fits (a single output that does not fit is a hard error —
/// use [`try_synthesize_partitioned`] to recover instead).
///
/// # Panics
///
/// Panics if a single-output group cannot be synthesized under `options`.
pub fn synthesize_partitioned(
    mgr: &BddManager,
    layout: &CfLayout,
    isf: &IsfBdds,
    initial_parts: &[Range<usize>],
    options: &CascadeOptions,
    prepare: impl FnMut(&mut Cf),
) -> MultiCascade {
    match try_synthesize_partitioned(mgr, layout, isf, initial_parts, options, prepare) {
        Ok(multi) => multi,
        Err((range, err)) => panic!(
            "output {} cannot be realized under the cell constraints: {err}",
            range.start
        ),
    }
}

fn assemble(done: Vec<(Range<usize>, Cf, Cascade)>) -> MultiCascade {
    let mut cascades = Vec::with_capacity(done.len());
    let mut ranges = Vec::with_capacity(done.len());
    let mut parts = Vec::with_capacity(done.len());
    for (range, part, cascade) in done {
        ranges.push(range);
        parts.push(part);
        cascades.push(cascade);
    }
    MultiCascade {
        cascades,
        ranges,
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::{MultiOracle, TruthTable};

    fn paper_pieces() -> (BddManager, CfLayout, IsfBdds, TruthTable) {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        (mgr, layout, isf, table)
    }

    #[test]
    fn bi_partition_synthesizes_and_evaluates() {
        let (mgr, layout, isf, table) = paper_pieces();
        let multi = synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..1, 1..2],
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
            |cf| {
                cf.reduce_alg33_default();
            },
        );
        assert_eq!(multi.num_cascades(), 2);
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let word = multi.eval(&input);
            assert!(
                table.respond(&input).admits(word, 2)
                    || (0..2).all(|j| table.get(r, j).admits(word >> j & 1 == 1)),
                "row {r} word {word:02b}"
            );
        }
    }

    #[test]
    fn over_tight_constraints_force_splitting() {
        let (mgr, layout, isf, _) = paper_pieces();
        // max_cell_outputs = 1 cannot host 2 outputs in one group if they
        // ever share a cell — force a start from the whole range and check
        // the splitter makes progress (2 single-output cascades at worst).
        let multi = synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..2],
            &CascadeOptions {
                max_cell_inputs: 6,
                max_cell_outputs: 1,
                ..CascadeOptions::default()
            },
            |_| {},
        );
        assert!(multi.num_cascades() >= 1);
        let total_outputs: usize = multi.ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total_outputs, 2);
    }

    #[test]
    fn accounting_sums_over_cascades() {
        let (mgr, layout, isf, _) = paper_pieces();
        let multi = synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..1, 1..2],
            &CascadeOptions::default(),
            |_| {},
        );
        let cells: usize = multi.cascades.iter().map(Cascade::num_cells).sum();
        assert_eq!(multi.num_cells(), cells);
        assert!(multi.memory_bits() > 0);
        assert!(multi.lut_outputs() >= 2);
    }

    #[test]
    fn parts_expose_reduced_cfs() {
        let (mgr, layout, isf, _) = paper_pieces();
        let multi = synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..1, 1..2],
            &CascadeOptions::default(),
            |cf| {
                cf.reduce_alg31();
            },
        );
        assert_eq!(multi.parts.len(), 2);
        for part in &multi.parts {
            assert!(part.output_nodes_well_formed());
        }
    }
}
