//! Materialized LUT cells.
//!
//! A cell is a memory: `2^(rails_in + #primary inputs)` words of
//! `rails_out + #primary outputs` bits. The paper's Table 6 experiment uses
//! cells with at most 12 inputs and 10 outputs.

/// One cell of an LUT cascade.
///
/// Input addressing: the low `rails_in` address bits carry the incoming
/// rail code, the remaining bits the primary inputs listed in `input_ids`
/// (in that order). Output packing: the low bits are the primary outputs in
/// `output_ids` order, the high `rails_out` bits the outgoing rail code.
#[derive(Clone, Debug)]
pub struct LutCell {
    rails_in: usize,
    input_ids: Vec<usize>,
    rails_out: usize,
    output_ids: Vec<usize>,
    table: Vec<u64>,
}

impl LutCell {
    /// Creates a cell from its table.
    ///
    /// # Panics
    ///
    /// Panics if the table size is not `2^(rails_in + input_ids.len())`, if
    /// the cell would have more than 63 address bits, or if an entry sets
    /// bits beyond `rails_out + output_ids.len()`.
    pub fn new(
        rails_in: usize,
        input_ids: Vec<usize>,
        rails_out: usize,
        output_ids: Vec<usize>,
        table: Vec<u64>,
    ) -> Self {
        let address_bits = rails_in + input_ids.len();
        assert!(address_bits < 64, "cell address space too large");
        assert_eq!(table.len(), 1 << address_bits, "table size mismatch");
        let out_bits = rails_out + output_ids.len();
        assert!(out_bits <= 64, "cell word too wide");
        if out_bits < 64 {
            assert!(
                table.iter().all(|&w| w >> out_bits == 0),
                "table entry sets bits beyond the cell word"
            );
        }
        LutCell {
            rails_in,
            input_ids,
            rails_out,
            output_ids,
            table,
        }
    }

    /// Number of incoming rail bits.
    pub fn rails_in(&self) -> usize {
        self.rails_in
    }

    /// Number of outgoing rail bits.
    pub fn rails_out(&self) -> usize {
        self.rails_out
    }

    /// Primary input indices this cell consumes.
    pub fn input_ids(&self) -> &[usize] {
        &self.input_ids
    }

    /// Primary output indices this cell produces.
    pub fn output_ids(&self) -> &[usize] {
        &self.output_ids
    }

    /// Total address bits (the paper's cell "inputs").
    pub fn num_inputs(&self) -> usize {
        self.rails_in + self.input_ids.len()
    }

    /// Total word bits (the paper's cell "outputs", the `#LUT` unit).
    pub fn num_outputs(&self) -> usize {
        self.rails_out + self.output_ids.len()
    }

    /// Memory bits of this cell: `2^inputs × outputs`.
    pub fn memory_bits(&self) -> u64 {
        (1u64 << self.num_inputs()) * self.num_outputs() as u64
    }

    /// True for a hardware no-op: no word bits (neither primary outputs
    /// nor outgoing rails) and no incoming rails. Synthesis produces such
    /// cells to consume layout variables that reductions made vacuous
    /// (e.g. the padding inputs of widened benchmarks); they carry no
    /// logic, and the Verilog emitter skips them.
    pub fn is_noop(&self) -> bool {
        self.num_outputs() == 0 && self.rails_in == 0
    }

    /// Looks the cell up: `rail_in` is the incoming code, `inputs[i]` the
    /// value of primary input `input_ids[i]`. Returns
    /// `(primary output bits, outgoing rail code)`.
    ///
    /// # Panics
    ///
    /// Panics if `rail_in` does not fit `rails_in` bits or `inputs` has the
    /// wrong arity.
    pub fn lookup(&self, rail_in: u64, inputs: &[bool]) -> (u64, u64) {
        assert!(
            self.rails_in == 64 || rail_in >> self.rails_in == 0,
            "rail code {rail_in} out of range"
        );
        assert_eq!(inputs.len(), self.input_ids.len(), "input arity mismatch");
        let mut address = rail_in;
        for (k, &bit) in inputs.iter().enumerate() {
            if bit {
                address |= 1 << (self.rails_in + k);
            }
        }
        let word = self.table[address as usize];
        let out_mask = if self.output_ids.is_empty() {
            0
        } else {
            (1u64 << self.output_ids.len()) - 1
        };
        (word & out_mask, word >> self.output_ids.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-input cell: rails_in = 1, one primary input (id 7); produces one
    /// primary output (id 3) and 1 rail: table = XOR into rail, AND into
    /// output.
    fn sample_cell() -> LutCell {
        let mut table = vec![0u64; 4];
        for address in 0..4u64 {
            let rail = address & 1;
            let x = address >> 1 & 1;
            let out = rail & x; // primary output bit
            let rail_out = rail ^ x;
            table[address as usize] = out | (rail_out << 1);
        }
        LutCell::new(1, vec![7], 1, vec![3], table)
    }

    #[test]
    fn lookup_unpacks_outputs_and_rails() {
        let cell = sample_cell();
        assert_eq!(cell.lookup(0, &[false]), (0, 0));
        assert_eq!(cell.lookup(1, &[false]), (0, 1));
        assert_eq!(cell.lookup(0, &[true]), (0, 1));
        assert_eq!(cell.lookup(1, &[true]), (1, 0));
    }

    #[test]
    fn geometry_accessors() {
        let cell = sample_cell();
        assert_eq!(cell.num_inputs(), 2);
        assert_eq!(cell.num_outputs(), 2);
        assert_eq!(cell.memory_bits(), 4 * 2);
        assert_eq!(cell.input_ids(), &[7]);
        assert_eq!(cell.output_ids(), &[3]);
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn rejects_wrong_table_size() {
        let _ = LutCell::new(1, vec![0], 0, vec![0], vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "beyond the cell word")]
    fn rejects_overwide_entries() {
        let _ = LutCell::new(0, vec![0], 0, vec![0], vec![0, 2]);
    }

    #[test]
    fn cell_with_no_primary_outputs() {
        // Pure rail transformer.
        let table = vec![1u64, 0];
        let cell = LutCell::new(1, vec![], 1, vec![], table);
        assert_eq!(cell.lookup(0, &[]), (0, 1));
        assert_eq!(cell.lookup(1, &[]), (0, 0));
    }
}
