//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * clique-cover heuristic: the paper's min-degree-first vs max-degree
//!   first (speed here; the resulting widths are printed once per run);
//! * output partitioning: whole function vs bi-partition vs per-output
//!   (§5.1's central design point);
//! * sifting cost function: sum-of-widths (paper) vs node count;
//! * Algorithm 3.3's cover engine: full pairwise graph vs first-fit.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf_bdd::ReorderCost;
use bddcf_core::cover::{CompatGraph, CoverHeuristic};
use bddcf_core::partition::partition_outputs;
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, RadixConverter, RnsConverter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A deterministic pseudo-random compatibility graph.
fn random_graph(n: usize, edge_per_mille: u64) -> CompatGraph {
    let mut g = CompatGraph::new(n);
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in 0..n {
        for j in i + 1..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 20) % 1000 < edge_per_mille {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn bench_cover_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cover");
    let g = random_graph(300, 200);
    for heuristic in [
        CoverHeuristic::MinDegreeFirst,
        CoverHeuristic::MaxDegreeFirst,
    ] {
        group.bench_function(format!("{heuristic:?}"), |b| {
            b.iter(|| black_box(g.clique_cover(heuristic).len()));
        });
    }
    // Quality snapshot (once, printed): fewer cliques is better.
    let min = g.clique_cover(CoverHeuristic::MinDegreeFirst).len();
    let max = g.clique_cover(CoverHeuristic::MaxDegreeFirst).len();
    println!(
        "cover quality on G(300, 20%): min-degree-first {min} cliques, max-degree-first {max}"
    );
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partition");
    group.sample_size(10);
    let rns = RnsConverter::rns_5_7_11_13();
    let (mgr, layout, isf) = build_isf_pieces(&rns);
    let m = layout.num_outputs();
    let partitions: Vec<(&str, Vec<std::ops::Range<usize>>)> = vec![
        ("whole", vec![0..m]),
        ("bipartition", vec![0..m.div_ceil(2), m.div_ceil(2)..m]),
        (
            "quarters",
            (0..4)
                .map(|q| (q * m) / 4..((q + 1) * m) / 4)
                .filter(|r| !r.is_empty())
                .collect(),
        ),
    ];
    for (name, parts) in &partitions {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let cfs = partition_outputs(&mgr, &layout, &isf, parts);
                let total: usize = cfs
                    .into_iter()
                    .map(|mut cf| {
                        cf.reduce_alg33(&Alg33Options::default());
                        cf.max_width()
                    })
                    .sum();
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_sift_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sift_cost");
    group.sample_size(10);
    let conv = RadixConverter::new(3, 6);
    let (mgr, layout, isf) = build_isf_pieces(&conv);
    let baseline = Cf::from_isf(mgr, layout, isf);
    for (name, cost) in [
        ("sum_of_widths", ReorderCost::SumOfWidths),
        ("node_count", ReorderCost::NodeCount),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || baseline.clone(),
                |mut cf| {
                    cf.optimize_order(cost, 1);
                    black_box(cf.max_width())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_alg33_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alg33_engine");
    group.sample_size(10);
    let rns = RnsConverter::rns_5_7_11_13();
    let (mgr, layout, isf) = build_isf_pieces(&rns);
    // One output half: the whole function's ~5000-wide cuts make the full
    // pairwise graph quadratically expensive — that comparison belongs to
    // the half-sized workload the paper actually uses.
    let baseline = partition_outputs(&mgr, &layout, &isf, &[0..layout.num_outputs().div_ceil(2)])
        .pop()
        .expect("one part");
    for (name, options) in [
        (
            "pairwise_graph",
            Alg33Options {
                max_pairwise_group: usize::MAX,
                ..Alg33Options::default()
            },
        ),
        (
            "first_fit",
            Alg33Options {
                max_pairwise_group: 0,
                ..Alg33Options::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || baseline.clone(),
                |mut cf| {
                    let stats = cf.reduce_alg33(&options);
                    black_box(stats.max_width_after)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    use bddcf_cascade::{synthesize, CascadeOptions, Segmentation};
    let mut group = c.benchmark_group("ablation_segmentation");
    group.sample_size(10);
    let rns = RnsConverter::rns_5_7_11_13();
    let (mgr, layout, isf) = build_isf_pieces(&rns);
    let m = layout.num_outputs();
    let baseline = partition_outputs(&mgr, &layout, &isf, &[0..m.div_ceil(2)])
        .pop()
        .expect("one part");
    for (name, segmentation) in [
        ("greedy", Segmentation::Greedy),
        ("min_cells_dp", Segmentation::MinCells),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || baseline.clone(),
                |mut cf| {
                    let cascade = synthesize(
                        &mut cf,
                        &CascadeOptions {
                            segmentation,
                            ..CascadeOptions::default()
                        },
                    )
                    .expect("RNS half fits default cells");
                    black_box((cascade.num_cells(), cascade.memory_bits()))
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cover_heuristics,
    bench_partitioning,
    bench_sift_cost,
    bench_alg33_engines,
    bench_segmentation
);
criterion_main!(benches);
