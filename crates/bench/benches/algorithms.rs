//! Criterion micro-benchmarks for the core algorithms: characteristic
//! function construction, the width-reduction algorithms, sifting, and the
//! width profile primitive they all lean on.

use bddcf_bdd::ReorderCost;
use bddcf_core::partition::bipartition;
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, Benchmark, DecimalAdder, RadixConverter, RnsConverter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// First output half of a benchmark, ready for reduction experiments.
fn first_half(benchmark: &dyn Benchmark) -> Cf {
    let (mgr, layout, isf) = build_isf_pieces(benchmark);
    bipartition(&mgr, &layout, &isf)
        .into_iter()
        .next()
        .expect("at least one half")
}

fn bench_cf_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_construction");
    group.bench_function("rns_5_7_11_13", |b| {
        let rns = RnsConverter::rns_5_7_11_13();
        b.iter(|| {
            let (mgr, _, isf) = build_isf_pieces(&rns);
            black_box((mgr.arena_len(), isf.num_outputs()))
        });
    });
    group.bench_function("radix_3_pow_6", |b| {
        let conv = RadixConverter::new(3, 6);
        b.iter(|| {
            let (mgr, _, isf) = build_isf_pieces(&conv);
            black_box((mgr.arena_len(), isf.num_outputs()))
        });
    });
    group.bench_function("decimal_adder_3", |b| {
        let adder = DecimalAdder::new(3);
        b.iter(|| {
            let (mgr, _, isf) = build_isf_pieces(&adder);
            black_box((mgr.arena_len(), isf.num_outputs()))
        });
    });
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions");
    group.sample_size(20);
    let baseline = first_half(&RnsConverter::rns_5_7_11_13());

    group.bench_function("alg31_rns_half", |b| {
        b.iter_batched(
            || baseline.clone(),
            |mut cf| {
                let stats = cf.reduce_alg31();
                black_box(stats.max_width_after)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("alg33_rns_half", |b| {
        b.iter_batched(
            || baseline.clone(),
            |mut cf| {
                let stats = cf.reduce_alg33(&Alg33Options::default());
                black_box(stats.max_width_after)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("support_reduction_rns_half", |b| {
        b.iter_batched(
            || baseline.clone(),
            |mut cf| black_box(cf.reduce_support_variables().len()),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_sifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sifting");
    group.sample_size(10);
    let baseline = first_half(&RadixConverter::new(3, 6));
    group.bench_function("sum_of_widths_pass_radix36_half", |b| {
        b.iter_batched(
            || baseline.clone(),
            |mut cf| black_box(cf.optimize_order(ReorderCost::SumOfWidths, 1)),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    let cf = first_half(&RnsConverter::rns_5_7_11_13());
    group.bench_function("width_profile", |b| {
        b.iter(|| black_box(cf.width_profile().max()));
    });
    group.bench_function("node_count", |b| {
        b.iter(|| black_box(cf.node_count()));
    });
    group.bench_function("eval_completed", |b| {
        let input = vec![true; cf.layout().num_inputs()];
        b.iter(|| black_box(cf.eval_completed(&input)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cf_construction,
    bench_reductions,
    bench_sifting,
    bench_primitives
);
criterion_main!(benches);
