//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// Minimal fixed-width table writer (right-aligned numeric columns).
#[derive(Debug)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column (labels), right-align the rest.
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for TableWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new(&["name", "w"]);
        t.row(&["foo".into(), "12".into()]);
        t.row(&["barbaz".into(), "3".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("foo"));
        assert!(lines[3].starts_with("barbaz"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_ragged_rows() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(&["x".into()]);
    }
}
