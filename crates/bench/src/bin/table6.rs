//! Regenerates **Table 6**: realization of English word lists by plain LUT
//! cascades (`DC=0`) versus the Fig. 8 architecture (LUT cascade +
//! auxiliary memory + comparator).
//!
//! For each list size the program reports `#Cel`, `#LUT`, `#Cas`, `#RV`
//! (redundant variables removed) and the memory bits of the cascades and of
//! the auxiliary memory, then verifies the Fig. 8 generator *exactly* on
//! every registered word and on random non-words.
//!
//! Usage: `cargo run --release -p bddcf-bench --bin table6 [--quick]`
//! (`--quick` uses 200/400/600-word lists).

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf_bdd::ReorderCost;
use bddcf_bench::TableWriter;
use bddcf_cascade::{
    synthesize_partitioned, try_synthesize_partitioned, AddressGenerator, CascadeOptions,
    MultiCascade,
};
use bddcf_funcs::{build_isf_pieces, WordList};
use bddcf_logic::MultiOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Fig8Result {
    generator: AddressGenerator,
    /// Inputs no cascade part reads anymore — the paper's `#RV` (removing
    /// `i` variables from a single-memory cascade divides its size by 2^i).
    removed_vars: usize,
}

/// DC=0 realization; when the exact function does not fit the nominal cell
/// word width (possible for the synthetic lists, whose single-output BDDs
/// are wider than real English ones), the cells are widened until it does
/// and the adjustment is reported.
fn realize_dc0(list: &WordList, cells: &CascadeOptions) -> (MultiCascade, usize) {
    let (mgr, layout, isf) = build_isf_pieces(list);
    let m = layout.num_outputs();
    let mut max_out = cells.max_cell_outputs;
    loop {
        let attempt = try_synthesize_partitioned(
            &mgr,
            &layout,
            &isf,
            &[0..m],
            &CascadeOptions {
                max_cell_outputs: max_out,
                ..*cells
            },
            // No sifting for the naive baseline: the bisection re-prepares
            // every candidate part, and sifting each multiplies the cost of
            // this (deliberately bad) configuration several times over.
            |_| {},
        );
        match attempt {
            Ok(multi) => return (multi, max_out),
            Err((range, err)) => {
                eprintln!(
                    "  output {} infeasible with {max_out}-output cells ({err}); widening",
                    range.start
                );
                max_out += 1;
                assert!(max_out <= 16, "runaway cell widening");
            }
        }
    }
}

fn realize_fig8(list: &WordList, cells: &CascadeOptions) -> Fig8Result {
    let (mgr, layout, isf) = build_isf_pieces(list);
    let m = layout.num_outputs();
    let multi = synthesize_partitioned(&mgr, &layout, &isf, &[0..m], cells, |cf| {
        cf.reduce_support_variables();
        cf.optimize_order(ReorderCost::SumOfWidths, 1);
        cf.reduce_alg33_default();
    });
    // #RV: inputs that no final part depends on.
    let mut used = vec![false; list.num_inputs()];
    for part in &multi.parts {
        for i in part.support_inputs() {
            used[i] = true;
        }
    }
    let removed_vars = used.iter().filter(|&&u| !u).count();
    let generator = AddressGenerator::new(multi, list.encoded().to_vec(), list.num_inputs());
    Fig8Result {
        generator,
        removed_vars,
    }
}

fn verify_generator(generator: &AddressGenerator, list: &WordList) {
    for (i, &w) in list.encoded().iter().enumerate() {
        assert_eq!(
            generator.lookup(w),
            (i + 1) as u64,
            "registered word {} must map to its index",
            list.words()[i]
        );
    }
    let mut rng = StdRng::seed_from_u64(42);
    let mut checked = 0;
    while checked < 2000 {
        let w: u64 = rng.gen::<u64>() & ((1u64 << 40) - 1);
        if list.encoded().contains(&w) {
            continue;
        }
        assert_eq!(generator.lookup(w), 0, "non-word {w:#x} must map to 0");
        checked += 1;
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![200, 400, 600]
    } else {
        WordList::paper_sizes().to_vec()
    };
    let cells = CascadeOptions::default();

    let mut table = TableWriter::new(&[
        "Method", "#words", "#Cel", "#LUT", "#Cas", "#RV", "LUT bits", "AUX bits",
    ]);
    for &size in &sizes {
        eprintln!("DC=0 realization of {size} words …");
        let exact = WordList::synthetic(size, false);
        let (dc0, max_out) = realize_dc0(&exact, &cells);
        let label = if max_out == cells.max_cell_outputs {
            "DC=0".to_string()
        } else {
            format!("DC=0 ({max_out}-out cells)")
        };
        table.row(&[
            label,
            size.to_string(),
            dc0.num_cells().to_string(),
            dc0.lut_outputs().to_string(),
            dc0.num_cascades().to_string(),
            "0".into(),
            dc0.memory_bits().to_string(),
            "0".into(),
        ]);
    }
    for &size in &sizes {
        eprintln!("Fig. 8 realization of {size} words …");
        let widened = WordList::synthetic(size, true);
        let fig8 = realize_fig8(&widened, &cells);
        verify_generator(&fig8.generator, &widened);
        table.row(&[
            "Fig. 8".into(),
            size.to_string(),
            fig8.generator.cascades().num_cells().to_string(),
            fig8.generator.cascades().lut_outputs().to_string(),
            fig8.generator.cascades().num_cascades().to_string(),
            fig8.removed_vars.to_string(),
            fig8.generator.cascades().memory_bits().to_string(),
            fig8.generator.aux_memory_bits().to_string(),
        ]);
    }

    println!("\nTable 6 — realization of English word lists (synthetic lists, see DESIGN.md)");
    println!("cells ≤ 12 inputs / 10 outputs; Fig. 8 = cascade + AUX memory + comparator\n");
    println!("{table}");
    println!("Every Fig. 8 generator verified exactly on all registered words and 2000 random non-words.");
    println!("\nPaper (real lists):   DC=0:   26/237/2, 60/475/6, 132/1094/12 (Cel/LUT/Cas)");
    println!("                      Fig. 8:  5/36/1 (RV 9), 11/77/2 (RV 9), 14/100/2 (RV 3)");
}
