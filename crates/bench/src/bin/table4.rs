//! Regenerates **Table 4** of the paper: maximum width and node count of
//! the BDD_for_CF under five treatments — DC=0, DC=1, ISF (ternary),
//! Algorithm 3.1, Algorithm 3.3 — with the outputs bi-partitioned and each
//! half sifted (sum-of-widths cost) first.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bddcf-bench --bin table4 [--quick]
//! ```
//!
//! `--quick` replaces the three word lists by smaller ones (200/400/600
//! words) and uses one sifting pass, for a fast smoke run.

use bddcf_bench::{measure_benchmark_quarantined, Measurement, PipelineOptions, TableWriter};
use bddcf_funcs::{table4_benchmarks, BenchmarkEntry, WordList};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut entries = table4_benchmarks();
    let mut options = PipelineOptions::default();
    if quick {
        options.sift_passes = 1;
        entries.truncate(13);
        for (label, size) in [("200 words", 200), ("400 words", 400), ("600 words", 600)] {
            entries.push(BenchmarkEntry {
                label: Box::leak(label.to_string().into_boxed_str()),
                benchmark: Box::new(WordList::synthetic(size, true)),
            });
        }
    }

    let mut table = TableWriter::new(&[
        "Function", "In", "Out", "DC%", "half", "W:DC=0", "W:DC=1", "W:ISF", "W:Alg3.1",
        "W:Alg3.3", "N:DC=0", "N:DC=1", "N:ISF", "N:Alg3.1", "N:Alg3.3", "t3.1[s]", "t3.3[s]",
    ]);

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut quarantined: Vec<(&str, String)> = Vec::new();
    for entry in &entries {
        eprintln!("measuring {} …", entry.label);
        let m = match measure_benchmark_quarantined(entry.benchmark.as_ref(), &options) {
            Ok(m) => m,
            Err(payload) => {
                // One bad benchmark must not cost the rest of the table.
                quarantined.push((entry.label, payload));
                continue;
            }
        };
        for (hi, h) in m.halves.iter().enumerate() {
            table.row(&[
                if hi == 0 {
                    m.label.clone()
                } else {
                    String::new()
                },
                if hi == 0 {
                    m.inputs.to_string()
                } else {
                    String::new()
                },
                if hi == 0 {
                    m.outputs.to_string()
                } else {
                    String::new()
                },
                if hi == 0 {
                    // Floor to one decimal so 99.9998% prints as the
                    // paper's 99.9, not a misleading 100.0.
                    format!("{:.1}", (m.dc_ratio * 1000.0).floor() / 10.0)
                } else {
                    String::new()
                },
                format!("F{}", hi + 1),
                h.dc0.max_width.to_string(),
                h.dc1.max_width.to_string(),
                h.isf.max_width.to_string(),
                h.alg31.max_width.to_string(),
                h.alg33.max_width.to_string(),
                h.dc0.nodes.to_string(),
                h.dc1.nodes.to_string(),
                h.isf.nodes.to_string(),
                h.alg31.nodes.to_string(),
                h.alg33.nodes.to_string(),
                format!("{:.3}", h.time_alg31.as_secs_f64()),
                format!("{:.3}", h.time_alg33.as_secs_f64()),
            ]);
        }
        measurements.push(m);
    }

    println!("\nTable 4 — maximum width and number of nodes in BDD_for_CF");
    println!("(outputs bi-partitioned: F1 = most significant half, F2 = rest)\n");
    println!("{table}");

    // The paper's final "Ratio" row: geometric-mean-free average of each
    // column normalized to DC=0 (as the paper does with arithmetic means).
    let mut ratio = [0.0f64; 10];
    let mut count = 0usize;
    for m in &measurements {
        for h in &m.halves {
            let w0 = h.dc0.max_width.max(1) as f64;
            let n0 = h.dc0.nodes.max(1) as f64;
            let ws = [
                h.dc0.max_width,
                h.dc1.max_width,
                h.isf.max_width,
                h.alg31.max_width,
                h.alg33.max_width,
            ];
            let ns = [
                h.dc0.nodes,
                h.dc1.nodes,
                h.isf.nodes,
                h.alg31.nodes,
                h.alg33.nodes,
            ];
            for (k, w) in ws.iter().enumerate() {
                ratio[k] += *w as f64 / w0;
            }
            for (k, n) in ns.iter().enumerate() {
                ratio[5 + k] += *n as f64 / n0;
            }
            count += 1;
        }
    }
    print!("Ratio (vs DC=0):  widths");
    for r in &ratio[..5] {
        print!(" {:.3}", r / count as f64);
    }
    print!("   nodes");
    for r in &ratio[5..] {
        print!(" {:.3}", r / count as f64);
    }
    println!();
    println!(
        "\nPaper's ratio row: widths 1.000 0.970 0.833 0.735 0.540   nodes 1.000 0.982 0.807 0.580 0.583"
    );

    if !quarantined.is_empty() {
        eprintln!(
            "\n{} benchmark(s) quarantined after panicking:",
            quarantined.len()
        );
        for (label, payload) in &quarantined {
            eprintln!("  {label}: {payload}");
        }
        std::process::exit(1);
    }
}
