//! Demonstrates the paper's §1 claim that classic *node-count* don't-care
//! minimization of separate per-output BDDs (refs.\ \[3\], \[6\], Coudert–Madre
//! restrict) "is unsuitable for functional decompositions of
//! multiple-output functions": restrict shrinks node counts, but the
//! quantity decomposition cares about — the shared width at a cut — barely
//! moves, while the BDD_for_CF algorithms attack the width directly.
//!
//! For each benchmark half:
//!
//! * `per-output restrict`: every output's ON BDD is minimized against the
//!   care set with `BddManager::restrict_care`; we report the *shared*
//!   node count of the output list and the width of the shared forest.
//! * `BDD_for_CF + Alg3.3`: the paper's method; width per Definition 3.5.

use bddcf_bdd::ReorderCost;
use bddcf_bench::TableWriter;
use bddcf_core::partition::bipartition;
use bddcf_funcs::{build_isf_pieces, table4_benchmarks};

fn main() {
    let suite = table4_benchmarks();
    let mut table = TableWriter::new(&[
        "Function",
        "half",
        "plain N",
        "restrict N",
        "plain W",
        "restrict W",
        "CF W (ISF)",
        "CF W (3.3)",
    ]);
    for entry in &suite[..13] {
        eprintln!("baseline comparison: {} …", entry.label);
        let (mgr, layout, isf) = build_isf_pieces(entry.benchmark.as_ref());
        for (hi, mut cf) in bipartition(&mgr, &layout, &isf).into_iter().enumerate() {
            cf.optimize_order(ReorderCost::SumOfWidths, 1);
            let isf_rec = cf.isf().clone();
            let cf_isf_width = cf.max_width();

            // Per-output restrict baseline in the same (sifted) order.
            let m = cf.layout().num_outputs();
            let mgr2 = cf.manager_mut();
            let mut plain = Vec::with_capacity(m);
            let mut restricted = Vec::with_capacity(m);
            for j in 0..m {
                let care = { mgr2.or(isf_rec.on[j], isf_rec.off[j]) };
                plain.push(isf_rec.on[j]);
                restricted.push(mgr2.restrict_care(isf_rec.on[j], care));
            }
            let plain_nodes = mgr2.node_count_multi(&plain);
            let restricted_nodes = mgr2.node_count_multi(&restricted);
            let plain_width = mgr2.width_profile(&plain).max();
            let restricted_width = mgr2.width_profile(&restricted).max();

            let mut cf33 = cf;
            cf33.reduce_alg33_default();

            table.row(&[
                if hi == 0 {
                    entry.label.to_string()
                } else {
                    String::new()
                },
                format!("F{}", hi + 1),
                plain_nodes.to_string(),
                restricted_nodes.to_string(),
                plain_width.to_string(),
                restricted_width.to_string(),
                cf_isf_width.to_string(),
                cf33.max_width().to_string(),
            ]);
        }
    }
    println!("\nPer-output restrict minimization vs BDD_for_CF width reduction");
    println!("(N = shared nodes of the per-output forest, W = max shared width)\n");
    println!("{table}");
    println!(
        "Reading: restrict reduces N (its objective) but leaves W mostly unchanged —\n\
         the §1 argument for operating on the characteristic function instead."
    );
}
