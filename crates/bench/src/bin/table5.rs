//! Regenerates the paper's **§5.2 experiment** (its Table 5 is cut off in
//! the copy we reproduce from; the section's surviving prose, Fig. 9, and
//! the concluding claim — "we could reduce the numbers of cells in
//! cascades, on the average, by 22.4%" — define the experiment): LUT
//! cascade realizations of the arithmetic benchmark functions, with cells
//! of at most 12 inputs / 10 outputs, comparing the `DC=0` baseline against
//! the don't-care-optimized (sift + Algorithm 3.3) synthesis.
//!
//! Every synthesized cascade set is verified against the generator oracle
//! on sampled valid inputs before being reported.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf_bdd::ReorderCost;
use bddcf_bench::TableWriter;
use bddcf_cascade::{synthesize_partitioned, CascadeOptions, MultiCascade};
use bddcf_funcs::{build_isf_pieces, table4_benchmarks, Benchmark};
use bddcf_logic::Response;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn verify(multi: &MultiCascade, benchmark: &dyn Benchmark, samples: usize) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let n = benchmark.num_inputs();
    let m = benchmark.num_outputs();
    let mut checked = 0usize;
    while checked < samples {
        let word: u64 = rng.gen::<u64>() & ((1u64 << n) - 1);
        let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
        if let Response::Value(expect) = benchmark.respond(&input) {
            let got = multi.eval(&input);
            assert_eq!(
                got,
                expect,
                "{}: cascade disagrees with oracle on {word:#x}",
                benchmark.name()
            );
            checked += 1;
        }
    }
    let _ = m;
}

fn realize(benchmark: &dyn Benchmark, optimized: bool, cells: &CascadeOptions) -> MultiCascade {
    let (mut mgr, layout, isf) = build_isf_pieces(benchmark);
    let isf = if optimized {
        isf
    } else {
        isf.completed(&mut mgr, false)
    };
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    synthesize_partitioned(&mgr, &layout, &isf, &[0..half, half..m], cells, |cf| {
        cf.optimize_order(ReorderCost::SumOfWidths, 1);
        if optimized {
            cf.reduce_alg33_default();
        }
    })
}

fn main() {
    let cells = CascadeOptions::default(); // 12-in / 10-out, as in the paper
    let suite = table4_benchmarks();
    let arithmetic = &suite[..13]; // everything except the word lists

    let mut table = TableWriter::new(&[
        "Function", "Cel0", "LUT0", "Cas0", "Mem0", "Cel*", "LUT*", "Cas*", "Mem*", "CelRed%",
    ]);
    let mut total_red = 0.0f64;
    let mut total_lut_red = 0.0f64;
    let mut total_mem_red = 0.0f64;
    for entry in arithmetic {
        eprintln!("synthesizing {} …", entry.label);
        let baseline = realize(entry.benchmark.as_ref(), false, &cells);
        let optimized = realize(entry.benchmark.as_ref(), true, &cells);
        verify(&baseline, entry.benchmark.as_ref(), 300);
        verify(&optimized, entry.benchmark.as_ref(), 300);
        let red = 100.0 * (baseline.num_cells() as f64 - optimized.num_cells() as f64)
            / baseline.num_cells() as f64;
        total_red += red;
        total_lut_red += 100.0 * (baseline.lut_outputs() as f64 - optimized.lut_outputs() as f64)
            / baseline.lut_outputs() as f64;
        total_mem_red += 100.0 * (baseline.memory_bits() as f64 - optimized.memory_bits() as f64)
            / baseline.memory_bits() as f64;
        table.row(&[
            entry.label.to_string(),
            baseline.num_cells().to_string(),
            baseline.lut_outputs().to_string(),
            baseline.num_cascades().to_string(),
            baseline.memory_bits().to_string(),
            optimized.num_cells().to_string(),
            optimized.lut_outputs().to_string(),
            optimized.num_cascades().to_string(),
            optimized.memory_bits().to_string(),
            format!("{red:.1}"),
        ]);
    }

    println!("\nTable 5 (reconstructed §5.2) — LUT cascades for arithmetic functions");
    println!("cells ≤ 12 inputs / 10 outputs; columns *0 = DC=0 baseline, *\u{2217} = don't-care optimized\n");
    println!("{table}");
    let n = arithmetic.len() as f64;
    println!(
        "Average reductions: cells {:.1}%  LUT outputs {:.1}%  memory bits {:.1}%   (paper's concluding claim: cells 22.4%)",
        total_red / n,
        total_lut_red / n,
        total_mem_red / n
    );
    println!(
        "All cascades verified against the generator oracles on 300 random valid inputs each."
    );
}
