//! Regenerates **Fig. 9**: the LUT cascade realization of the 5-7-11-13
//! RNS-to-binary converter, printing the cell structure (inputs, rails,
//! outputs per cell) for the DC=0 baseline and the don't-care-optimized
//! version, and verifying both against CRT arithmetic on every valid
//! residue combination.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf_bdd::ReorderCost;
use bddcf_cascade::{synthesize_partitioned, CascadeOptions, MultiCascade};
use bddcf_funcs::{build_isf_pieces, value_to_word, RnsConverter};
use bddcf_logic::MultiOracle;

fn describe(multi: &MultiCascade, title: &str) {
    println!("\n{title}");
    println!(
        "  cascades: {}  cells: {}  LUT outputs: {}  memory bits: {}",
        multi.num_cascades(),
        multi.num_cells(),
        multi.lut_outputs(),
        multi.memory_bits()
    );
    for (cascade, range) in multi.cascades.iter().zip(&multi.ranges) {
        println!("  cascade for outputs {}..{}:", range.start, range.end);
        for (i, cell) in cascade.cells().iter().enumerate() {
            println!(
                "    cell {i}: {:>2} rails + {:>2} inputs {:?} -> {:>2} rails + outputs {:?}   ({} x {} bits)",
                cell.rails_in(),
                cell.input_ids().len(),
                cell.input_ids(),
                cell.rails_out(),
                cell.output_ids(),
                1u64 << cell.num_inputs(),
                cell.num_outputs(),
            );
        }
    }
}

fn realize(rns: &RnsConverter, optimized: bool, cells: &CascadeOptions) -> MultiCascade {
    let (mut mgr, layout, isf) = build_isf_pieces(rns);
    let isf = if optimized {
        isf
    } else {
        isf.completed(&mut mgr, false)
    };
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    synthesize_partitioned(&mgr, &layout, &isf, &[0..half, half..m], cells, |cf| {
        cf.optimize_order(ReorderCost::SumOfWidths, 2);
        if optimized {
            cf.reduce_alg33_default();
        }
    })
}

fn main() {
    let rns = RnsConverter::rns_5_7_11_13();
    let cells = CascadeOptions::default();
    println!("Fig. 9 — 5-7-11-13 RNS to binary converter as LUT cascades");
    println!("(14 inputs, 13 outputs, M = {})", rns.modulus_product());

    let baseline = realize(&rns, false, &cells);
    let optimized = realize(&rns, true, &cells);
    describe(&baseline, "DC=0 baseline:");
    describe(&optimized, "Don't-care optimized (sift + Algorithm 3.3):");

    // Exhaustive verification over all 5005 valid residue combinations.
    let m = rns.num_outputs();
    for combo in rns.digits().valid_combinations() {
        let word = rns.digits().encode(&combo);
        let input: Vec<bool> = (0..rns.num_inputs()).map(|i| word >> i & 1 == 1).collect();
        let expect = value_to_word(rns.value_of(&combo), m);
        assert_eq!(baseline.eval(&input), expect, "baseline {combo:?}");
        assert_eq!(optimized.eval(&input), expect, "optimized {combo:?}");
    }
    println!("\nBoth realizations verified exhaustively on all 5005 valid residue tuples.");
}
