//! Checks the paper's §1 motivation: "BDD_for_CFs usually require fewer
//! nodes than corresponding MTBDDs, and the widths of the BDD_for_CFs tend
//! to be smaller than that of the corresponding MTBDDs."
//!
//! For each arithmetic benchmark, the DC=0 completion is represented both
//! ways (same sifted input order) and sizes are compared.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf_bdd::mtbdd::MtbddManager;
use bddcf_bench::TableWriter;
use bddcf_core::partition::bipartition;
use bddcf_funcs::{build_isf_pieces, table4_benchmarks};

fn compare_part(cf: &mut bddcf_core::Cf) -> (usize, usize, usize, usize) {
    // No reordering: the comparison needs the *same* order for both
    // representations, not an optimal one. And no symbolic completion: the
    // ISF record here is already the DC=0 completion, so its ON sets *are*
    // the per-output functions.
    let outputs = cf.isf().on.clone();
    let mut mt = MtbddManager::with_order_of(cf.manager());
    let root = mt.from_bdds(cf.manager(), &outputs);
    let mt_width = mt.width_profile(root).into_iter().max().unwrap_or(1);
    (
        cf.node_count(),
        cf.max_width(),
        mt.node_count(root),
        mt_width,
    )
}

fn main() {
    let suite = table4_benchmarks();
    let mut table = TableWriter::new(&[
        "Function",
        "part",
        "CF nodes",
        "CF maxW",
        "MTBDD nodes",
        "MTBDD maxW",
    ]);
    for entry in &suite[..13] {
        eprintln!("comparing {} …", entry.label);
        let (mut mgr, layout, isf) = build_isf_pieces(entry.benchmark.as_ref());
        let isf = isf.completed(&mut mgr, false);
        // Whole multiple-output function — where the paper's "BDD_for_CFs
        // usually require fewer nodes than corresponding MTBDDs" claim
        // lives: the MTBDD cannot share structure across its up-to-2^m
        // distinct terminal words.
        let m = layout.num_outputs();
        let mut whole = bddcf_core::partition::partition_outputs(&mgr, &layout, &isf, &[0..m])
            .pop()
            .expect("one part");
        let (cn, cw, mn, mw) = compare_part(&mut whole);
        table.row(&[
            entry.label.to_string(),
            "all".into(),
            cn.to_string(),
            cw.to_string(),
            mn.to_string(),
            mw.to_string(),
        ]);
        for (hi, mut cf) in bipartition(&mgr, &layout, &isf).into_iter().enumerate() {
            let (cn, cw, mn, mw) = compare_part(&mut cf);
            table.row(&[
                String::new(),
                format!("F{}", hi + 1),
                cn.to_string(),
                cw.to_string(),
                mn.to_string(),
                mw.to_string(),
            ]);
        }
    }
    println!("\nMTBDD vs BDD_for_CF (§1's motivating comparison, DC=0 completions)\n");
    println!("{table}");
}
