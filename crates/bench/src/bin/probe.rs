//! Timing probe: runs the Table-4 pipeline on a few representative
//! benchmarks and prints wall-clock costs, to size the full experiment run.

use bddcf_bench::{measure_benchmark, PipelineOptions};
use bddcf_funcs::{Benchmark, DecimalAdder, DecimalMultiplier, RnsConverter, WordList};
use std::time::Instant;

fn probe(benchmark: &dyn Benchmark, options: &PipelineOptions) {
    let t0 = Instant::now();
    let m = measure_benchmark(benchmark, options);
    let total = t0.elapsed();
    println!(
        "{:<28} total {:>8.2?}  sift {:>8.2?}",
        m.label, total, m.time_sift
    );
    for h in &m.halves {
        println!(
            "  outs {:>2}..{:<2} widths dc0/isf/31/33: {:>6}/{:>6}/{:>6}/{:>6}  nodes {:>6}/{:>6}/{:>6}/{:>6}  t31 {:>7.2?} t33 {:>7.2?}",
            h.range.start,
            h.range.end,
            h.dc0.max_width,
            h.isf.max_width,
            h.alg31.max_width,
            h.alg33.max_width,
            h.dc0.nodes,
            h.isf.nodes,
            h.alg31.nodes,
            h.alg33.nodes,
            h.time_alg31,
            h.time_alg33,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("rns");
    let mut options = PipelineOptions::default();
    if let Ok(g) = std::env::var("GROUP") {
        options.alg33.max_pairwise_group = g.parse().expect("GROUP must be a non-negative integer");
    }
    if let Ok(t) = std::env::var("TRIES") {
        options.alg33.first_fit_tries = t.parse().expect("TRIES must be a non-negative integer");
    }
    match which {
        "rns" => probe(&RnsConverter::rns_5_7_11_13(), &options),
        "adder3" => probe(&DecimalAdder::new(3), &options),
        "mult" => probe(&DecimalMultiplier::new(2), &options),
        "adder4" => probe(&DecimalAdder::new(4), &options),
        "rns3" => probe(&RnsConverter::rns_11_13_15_17(), &options),
        "words-small" => probe(&WordList::synthetic(200, true), &options),
        "words" => probe(&WordList::synthetic(1730, true), &options),
        other => eprintln!("unknown probe {other}"),
    }
}
