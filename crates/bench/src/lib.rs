//! Experiment harness: the shared pipeline behind the binaries that
//! regenerate the paper's tables and figures.
//!
//! | Target | Reproduces |
//! |--------|-----------|
//! | `cargo run --release -p bddcf-bench --bin table4` | Table 4 (widths & node counts: DC=0 / DC=1 / ISF / Alg3.1 / Alg3.3) |
//! | `cargo run --release -p bddcf-bench --bin table5` | §5.2 (reconstructed): LUT cascades for the arithmetic functions |
//! | `cargo run --release -p bddcf-bench --bin table6` | Table 6: word lists, plain cascades vs the Fig. 8 architecture |
//! | `cargo run --release -p bddcf-bench --bin fig9`   | Fig. 9: cascade structure of the 5-7-11-13 RNS converter |
//! | `cargo run --release -p bddcf-bench --bin mtbdd_compare` | §1's MTBDD vs BDD_for_CF size claim |
//! | `cargo bench -p bddcf-bench` | Criterion micro-benchmarks + ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod report;
pub mod suite;

pub use pipeline::{
    measure_benchmark, measure_benchmark_quarantined, HalfMeasurement, Measurement, PipelineOptions,
};
pub use report::TableWriter;
pub use suite::{run_bench, run_suite, BenchReport, EngineFigures, BENCH_FORMAT};
