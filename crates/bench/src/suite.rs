//! The `bddcf bench` measurement suite: machine-readable wall-clock and
//! engine-health figures for the registry benchmarks, in a stable JSON
//! format (`bddcf-bench-v1`) that the committed `BENCH_baseline.json` and
//! the CI `bench-diff` job both speak.
//!
//! Three suites are available:
//!
//! * `small` — the five `small_benchmarks()` through the Table-4 pipeline
//!   (cheap; used by tests and smoke runs);
//! * `table4` — the full Table-4 batch (§5.1 pipeline per benchmark);
//! * `table5` — the §5.2 cascade synthesis pair (DC=0 baseline +
//!   don't-care-optimized) over the arithmetic benchmarks.
//!
//! Every report carries a **calibration figure**: the wall time of a fixed
//! engine-independent integer workload, measured on the same machine in
//! the same process. Comparing two reports normalizes each wall-clock
//! total by its own calibration, so a baseline recorded on a faster (or
//! slower) machine still diffs meaningfully. The workload is deliberately
//! *not* BDD work — if it were, engine speedups would cancel out of the
//! normalized ratio and regressions would hide.
//!
//! All figures are integers (nanoseconds / counts); the emitter writes
//! keys in a fixed order so a byte-identical rerun produces byte-identical
//! JSON (modulo the timings themselves).

use crate::pipeline::{measure_benchmark_quarantined, Measurement, PipelineOptions};
use bddcf_bdd::ReorderCost;
use bddcf_cascade::{synthesize_partitioned, CascadeOptions, MultiCascade};
use bddcf_funcs::{build_isf_pieces, small_benchmarks, table4_benchmarks, Benchmark};
use std::fmt::Write as _;
use std::time::Instant;

/// Format tag written into every report; bump on breaking schema changes.
pub const BENCH_FORMAT: &str = "bddcf-bench-v1";

/// Engine-health figures of one entry (arena/table/cache counters
/// accumulated over every manager the entry ran through).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineFigures {
    /// Highest live interior node count observed.
    pub peak_nodes: u64,
    /// Highest arena footprint in bytes (capacity × node size).
    pub peak_arena_bytes: u64,
    /// Unique-table lookups.
    pub unique_lookups: u64,
    /// Chain links followed across all unique-table lookups (probe length
    /// = `unique_probes / unique_lookups`).
    pub unique_probes: u64,
    /// Computed-table hits, summed over the four op caches.
    pub cache_hits: u64,
    /// Computed-table misses, summed over the four op caches.
    pub cache_misses: u64,
    /// Live computed-table entries overwritten by a colliding insert.
    pub cache_evictions: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Total wall time spent inside GC.
    pub gc_pause_ns: u64,
}

impl EngineFigures {
    /// Accumulates another set of figures into this one (peaks max,
    /// counters add).
    pub fn absorb(&mut self, other: &EngineFigures) {
        self.peak_nodes = self.peak_nodes.max(other.peak_nodes);
        self.peak_arena_bytes = self.peak_arena_bytes.max(other.peak_arena_bytes);
        self.unique_lookups += other.unique_lookups;
        self.unique_probes += other.unique_probes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.gc_runs += other.gc_runs;
        self.gc_pause_ns += other.gc_pause_ns;
    }
}

/// One benchmark's figures within a suite.
#[derive(Clone, Debug)]
pub struct EntryReport {
    /// Registry label.
    pub label: String,
    /// Wall time of the whole entry.
    pub wall_ns: u64,
    /// Suite-specific figures, in emission order.
    pub detail: Vec<(&'static str, u64)>,
    /// Engine-health counters.
    pub engine: EngineFigures,
}

/// One suite's figures.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Suite name (`small` | `table4` | `table5`).
    pub name: String,
    /// Sum of entry wall times (the figure the diff compares).
    pub total_wall_ns: u64,
    /// Benchmarks that panicked inside the quarantine, with payloads.
    pub quarantined: Vec<(String, String)>,
    /// Per-benchmark figures.
    pub entries: Vec<EntryReport>,
}

/// A full `bddcf bench` report.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Calibration workload wall time (see module docs).
    pub calibration_ns: u64,
    /// One per requested suite, in request order.
    pub suites: Vec<SuiteReport>,
}

/// Runs the fixed engine-independent calibration workload and returns its
/// wall time in nanoseconds (best of three, to shed scheduler noise).
pub fn calibrate() -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            // splitmix64: fixed integer work with a serial dependency, so
            // the optimizer cannot collapse the loop.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn pipeline_detail(m: &Measurement) -> (Vec<(&'static str, u64)>, EngineFigures) {
    let mut alg31_ns = 0u64;
    let mut alg33_ns = 0u64;
    let mut nodes_isf = 0u64;
    let mut nodes_alg31 = 0u64;
    let mut nodes_alg33 = 0u64;
    let mut width_alg33 = 0u64;
    let mut engine = EngineFigures::default();
    for half in &m.halves {
        alg31_ns += half.time_alg31.as_nanos() as u64;
        alg33_ns += half.time_alg33.as_nanos() as u64;
        nodes_isf += half.isf.nodes as u64;
        nodes_alg31 += half.alg31.nodes as u64;
        nodes_alg33 += half.alg33.nodes as u64;
        width_alg33 = width_alg33.max(half.alg33.max_width as u64);
        engine.absorb(&half.engine);
    }
    (
        vec![
            ("inputs", m.inputs as u64),
            ("outputs", m.outputs as u64),
            ("sift_ns", m.time_sift.as_nanos() as u64),
            ("alg31_ns", alg31_ns),
            ("alg33_ns", alg33_ns),
            ("nodes_isf", nodes_isf),
            ("nodes_alg31", nodes_alg31),
            ("nodes_alg33", nodes_alg33),
            ("width_alg33", width_alg33),
        ],
        engine,
    )
}

/// Runs the §5.1 pipeline over a benchmark list and collects a suite
/// report. Panicking benchmarks are quarantined and listed, not fatal.
fn pipeline_suite(
    name: &str,
    entries: Vec<bddcf_funcs::BenchmarkEntry>,
    options: &PipelineOptions,
    progress: bool,
) -> SuiteReport {
    let mut report = SuiteReport {
        name: name.to_string(),
        total_wall_ns: 0,
        quarantined: Vec::new(),
        entries: Vec::new(),
    };
    for entry in entries {
        if progress {
            eprintln!("bench[{name}]: {} …", entry.label);
        }
        let t0 = Instant::now();
        match measure_benchmark_quarantined(entry.benchmark.as_ref(), options) {
            Ok(m) => {
                let wall_ns = t0.elapsed().as_nanos() as u64;
                let (detail, engine) = pipeline_detail(&m);
                report.total_wall_ns += wall_ns;
                report.entries.push(EntryReport {
                    label: entry.label.to_string(),
                    wall_ns,
                    detail,
                    engine,
                });
            }
            Err(payload) => report.quarantined.push((entry.label.to_string(), payload)),
        }
    }
    report
}

/// §5.2 cascade synthesis of one benchmark (the Table-5 experiment's
/// inner loop, minus oracle verification — `bddcf bench` measures the
/// synthesis wall time; semantic verification stays the `table5` binary's
/// and the check layers' job).
fn realize_cascades(
    benchmark: &dyn Benchmark,
    optimized: bool,
    cells: &CascadeOptions,
) -> (MultiCascade, EngineFigures) {
    let (mut mgr, layout, isf) = build_isf_pieces(benchmark);
    let isf = if optimized {
        isf
    } else {
        isf.completed(&mut mgr, false)
    };
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    let mut engine = EngineFigures::default();
    #[allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
    let cascade = synthesize_partitioned(&mgr, &layout, &isf, &[0..half, half..m], cells, |cf| {
        cf.optimize_order(ReorderCost::SumOfWidths, 1);
        if optimized {
            cf.reduce_alg33_default();
        }
        engine.absorb(&crate::pipeline::engine_figures(cf));
    });
    (cascade, engine)
}

fn table5_suite(progress: bool) -> SuiteReport {
    let cells = CascadeOptions::default(); // 12-in / 10-out, as in the paper
    let suite = table4_benchmarks();
    let arithmetic = &suite[..13]; // everything except the word lists
    let mut report = SuiteReport {
        name: "table5".to_string(),
        total_wall_ns: 0,
        quarantined: Vec::new(),
        entries: Vec::new(),
    };
    for entry in arithmetic {
        if progress {
            eprintln!("bench[table5]: {} …", entry.label);
        }
        let t0 = Instant::now();
        let (baseline, engine_dc0) = realize_cascades(entry.benchmark.as_ref(), false, &cells);
        let (optimized, engine_opt) = realize_cascades(entry.benchmark.as_ref(), true, &cells);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        report.total_wall_ns += wall_ns;
        let mut engine = engine_dc0;
        engine.absorb(&engine_opt);
        report.entries.push(EntryReport {
            label: entry.label.to_string(),
            wall_ns,
            detail: vec![
                ("cells_dc0", baseline.num_cells() as u64),
                ("cells_opt", optimized.num_cells() as u64),
                ("lut_outputs_opt", optimized.lut_outputs() as u64),
                ("memory_bits_opt", optimized.memory_bits()),
            ],
            engine,
        });
    }
    report
}

/// Runs one suite by name. `progress` prints per-benchmark lines on
/// stderr (the JSON report goes to stdout / a file untouched).
///
/// # Errors
///
/// Returns the offending name when it is not a known suite.
pub fn run_suite(name: &str, progress: bool) -> Result<SuiteReport, String> {
    let options = PipelineOptions::default();
    match name {
        "small" => Ok(pipeline_suite(
            "small",
            small_benchmarks(),
            &options,
            progress,
        )),
        "table4" => Ok(pipeline_suite(
            "table4",
            table4_benchmarks(),
            &options,
            progress,
        )),
        "table5" => Ok(table5_suite(progress)),
        other => Err(format!(
            "unknown bench suite {other:?} (expected small | table4 | table5)"
        )),
    }
}

/// Runs the requested suites plus the calibration workload.
///
/// # Errors
///
/// Returns the first unknown suite name.
pub fn run_bench(suites: &[String], progress: bool) -> Result<BenchReport, String> {
    let calibration_ns = calibrate();
    let mut report = BenchReport {
        calibration_ns,
        suites: Vec::new(),
    };
    for name in suites {
        report.suites.push(run_suite(name, progress)?);
    }
    Ok(report)
}

fn push_engine(out: &mut String, engine: &EngineFigures) {
    let _ = write!(
        out,
        "\"engine\":{{\"peak_nodes\":{},\"peak_arena_bytes\":{},\
         \"unique_lookups\":{},\"unique_probes\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"cache_evictions\":{},\"gc_runs\":{},\
         \"gc_pause_ns\":{}}}",
        engine.peak_nodes,
        engine.peak_arena_bytes,
        engine.unique_lookups,
        engine.unique_probes,
        engine.cache_hits,
        engine.cache_misses,
        engine.cache_evictions,
        engine.gc_runs,
        engine.gc_pause_ns,
    );
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl BenchReport {
    /// Renders the report as deterministic, insertion-ordered JSON (keys
    /// always in the same order; integers only).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"format\": \"{}\",\n  \"calibration_ns\": {},\n  \"suites\": [",
            BENCH_FORMAT, self.calibration_ns
        );
        for (si, suite) in self.suites.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"total_wall_ns\": {}, \"entries\": [",
                suite.name, suite.total_wall_ns
            );
            for (ei, entry) in suite.entries.iter().enumerate() {
                if ei > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"label\":");
                push_json_string(&mut out, &entry.label);
                let _ = write!(out, ",\"wall_ns\":{}", entry.wall_ns);
                for (key, value) in &entry.detail {
                    let _ = write!(out, ",\"{key}\":{value}");
                }
                out.push(',');
                push_engine(&mut out, &entry.engine);
                out.push('}');
            }
            out.push_str("\n    ]");
            if !suite.quarantined.is_empty() {
                out.push_str(", \"quarantined\": [");
                for (qi, (label, payload)) in suite.quarantined.iter().enumerate() {
                    if qi > 0 {
                        out.push(',');
                    }
                    out.push_str("\n      {\"label\":");
                    push_json_string(&mut out, label);
                    out.push_str(",\"panic\":");
                    push_json_string(&mut out, payload);
                    out.push('}');
                }
                out.push_str("\n    ]");
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_figures_and_stable_json() {
        let report = run_bench(&["small".to_string()], false).expect("small suite");
        assert_eq!(report.suites.len(), 1);
        let suite = &report.suites[0];
        assert_eq!(suite.name, "small");
        assert_eq!(suite.entries.len(), 5);
        assert!(suite.quarantined.is_empty());
        assert!(suite.total_wall_ns > 0);
        let sum: u64 = suite.entries.iter().map(|e| e.wall_ns).sum();
        assert_eq!(sum, suite.total_wall_ns, "total is the sum of entries");
        for entry in &suite.entries {
            assert!(entry.detail.iter().any(|(k, _)| *k == "nodes_alg33"));
        }
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"format\": \"bddcf-bench-v1\""));
        assert!(json.contains("\"name\": \"small\""));
        assert!(json.contains("\"engine\":{\"peak_nodes\":"));
        // Same figures → byte-identical emission.
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn unknown_suites_are_typed_errors() {
        let err = run_suite("table9", false).expect_err("unknown suite");
        assert!(err.contains("table9"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
