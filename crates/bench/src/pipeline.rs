//! The §5.1 measurement pipeline shared by the table binaries.
//!
//! For one benchmark function:
//!
//! 1. build the ISF symbolically and bi-partition the outputs
//!    (`F₁` = most significant half, `F₂` = rest);
//! 2. per half: sift the BDD_for_CF with the sum-of-widths cost;
//! 3. measure the ISF representation, then — in the same (sifted) variable
//!    order — the `DC=0` and `DC=1` completions, then Algorithm 3.1 and
//!    Algorithm 3.3 applied to forks of the sifted ISF.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf_bdd::ReorderCost;
use bddcf_core::partition::bipartition;
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, Benchmark};
use std::time::{Duration, Instant};

/// Knobs for [`measure_benchmark`].
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Sifting passes over each half (0 disables reordering).
    pub sift_passes: usize,
    /// Sifting cost function (the paper: sum of widths).
    pub sift_cost: ReorderCost,
    /// Algorithm 3.3 tuning.
    pub alg33: Alg33Options,
    /// Also run support-variable reduction before the algorithms (§3.3
    /// suggests it; only the word lists benefit).
    pub reduce_support: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            sift_passes: 2,
            sift_cost: ReorderCost::SumOfWidths,
            alg33: Alg33Options::default(),
            reduce_support: false,
        }
    }
}

/// Width/node metrics of one representation of one output half.
#[derive(Clone, Copy, Debug, Default)]
pub struct Shape {
    /// Maximum BDD_for_CF width (Definition 3.5).
    pub max_width: usize,
    /// Non-terminal node count.
    pub nodes: usize,
}

/// All representations of one output half (one "upper/lower" row pair cell
/// of Table 4).
#[derive(Clone, Debug)]
pub struct HalfMeasurement {
    /// Output range of this half in the original numbering.
    pub range: std::ops::Range<usize>,
    /// Constant-0 completion.
    pub dc0: Shape,
    /// Constant-1 completion.
    pub dc1: Shape,
    /// Incompletely specified (ternary) representation.
    pub isf: Shape,
    /// After Algorithm 3.1.
    pub alg31: Shape,
    /// After Algorithm 3.3.
    pub alg33: Shape,
    /// Time spent in Algorithm 3.1.
    pub time_alg31: Duration,
    /// Time spent in Algorithm 3.3.
    pub time_alg33: Duration,
    /// Support variables removed before the algorithms (when enabled).
    pub removed_inputs: usize,
    /// Engine-health counters accumulated over the half's managers (the
    /// sifted ISF's plus the Algorithm 3.1 and 3.3 forks').
    pub engine: crate::suite::EngineFigures,
}

/// Table-4 measurements of one benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Row label.
    pub label: String,
    /// Inputs `n`.
    pub inputs: usize,
    /// Outputs `m`.
    pub outputs: usize,
    /// Analytic don't-care ratio.
    pub dc_ratio: f64,
    /// One entry per output half (`F₁` first).
    pub halves: Vec<HalfMeasurement>,
    /// Sifting time over all halves.
    pub time_sift: Duration,
}

/// Phase-boundary audit (``check`` feature only): manager integrity, the
/// CF lints, and the refinement oracle must all hold before a shape is
/// recorded in a table.
#[cfg(feature = "check")]
fn audit(cf: &mut Cf, phase: &str) {
    let mut report = bddcf_check::CheckReport::new();
    report.absorb(phase, bddcf_check::check_manager(cf.manager()));
    report.absorb(phase, bddcf_check::check_cf(cf));
    report.absorb(phase, bddcf_check::check_refinement(cf));
    report.assert_clean("bench pipeline");
}

#[cfg(not(feature = "check"))]
fn audit(_cf: &mut Cf, _phase: &str) {}

fn shape_of(cf: &Cf) -> Shape {
    Shape {
        max_width: cf.max_width(),
        nodes: cf.node_count(),
    }
}

pub(crate) fn engine_figures(cf: &Cf) -> crate::suite::EngineFigures {
    let stats = cf.manager().engine_stats();
    let cache = stats.cache_total();
    crate::suite::EngineFigures {
        peak_nodes: stats.peak_nodes,
        peak_arena_bytes: stats.peak_arena_bytes,
        unique_lookups: stats.unique_lookups,
        unique_probes: stats.unique_probes,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        gc_runs: stats.gc_runs,
        gc_pause_ns: stats.gc_pause_ns,
    }
}

/// Counters accrued in `after` beyond `base` (a forked manager inherits
/// the shared prefix's monotone counters; subtracting the fork point keeps
/// the prefix from being counted once per fork). Peaks pass through —
/// [`EngineFigures::absorb`](crate::suite::EngineFigures::absorb) takes
/// the max.
fn engine_delta(
    after: &crate::suite::EngineFigures,
    base: &crate::suite::EngineFigures,
) -> crate::suite::EngineFigures {
    crate::suite::EngineFigures {
        peak_nodes: after.peak_nodes,
        peak_arena_bytes: after.peak_arena_bytes,
        unique_lookups: after.unique_lookups.saturating_sub(base.unique_lookups),
        unique_probes: after.unique_probes.saturating_sub(base.unique_probes),
        cache_hits: after.cache_hits.saturating_sub(base.cache_hits),
        cache_misses: after.cache_misses.saturating_sub(base.cache_misses),
        cache_evictions: after.cache_evictions.saturating_sub(base.cache_evictions),
        gc_runs: after.gc_runs.saturating_sub(base.gc_runs),
        gc_pause_ns: after.gc_pause_ns.saturating_sub(base.gc_pause_ns),
    }
}

/// Shape of a completion variant: same input order as the sifted ISF, but
/// output positions legalized against the completion's own Definition-2.4
/// constraints (see [`Cf::completion_variant`] — this is what makes the
/// DC=0 adder baselines blow up exactly as in the paper).
fn completion_shape(cf: &Cf, fill: bool) -> Shape {
    shape_of(&cf.completion_variant(fill))
}

/// Runs the full Table-4 pipeline on one benchmark.
pub fn measure_benchmark(benchmark: &dyn Benchmark, options: &PipelineOptions) -> Measurement {
    let (mgr, layout, isf) = build_isf_pieces(benchmark);
    let halves_cf = bipartition(&mgr, &layout, &isf);
    drop(mgr);

    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    let ranges = if halves_cf.len() == 1 {
        vec![0..m]
    } else {
        vec![0..half, half..m]
    };

    let mut time_sift = Duration::ZERO;
    let mut halves = Vec::new();
    for (mut cf, range) in halves_cf.into_iter().zip(ranges) {
        let t0 = Instant::now();
        if options.sift_passes > 0 {
            cf.optimize_order(options.sift_cost, options.sift_passes);
        }
        time_sift += t0.elapsed();

        audit(&mut cf, "after sift");

        let mut removed_inputs = 0;
        if options.reduce_support {
            removed_inputs = cf.reduce_support_variables().len();
            audit(&mut cf, "after support reduction");
        }

        let isf_shape = shape_of(&cf);
        let dc0 = completion_shape(&cf, false);
        let dc1 = completion_shape(&cf, true);

        // Fork point: both algorithm forks inherit these counters.
        let engine_base = engine_figures(&cf);

        let mut cf31 = cf.clone();
        let t31 = Instant::now();
        cf31.reduce_alg31();
        let time_alg31 = t31.elapsed();
        audit(&mut cf31, "after Algorithm 3.1");

        let mut cf33 = cf;
        let t33 = Instant::now();
        cf33.reduce_alg33(&options.alg33);
        let time_alg33 = t33.elapsed();
        audit(&mut cf33, "after Algorithm 3.3");

        let mut engine = engine_base;
        engine.absorb(&engine_delta(&engine_figures(&cf31), &engine_base));
        engine.absorb(&engine_delta(&engine_figures(&cf33), &engine_base));

        halves.push(HalfMeasurement {
            range,
            dc0,
            dc1,
            isf: isf_shape,
            alg31: shape_of(&cf31),
            alg33: shape_of(&cf33),
            time_alg31,
            time_alg33,
            removed_inputs,
            engine,
        });
    }

    Measurement {
        label: benchmark.name(),
        inputs: layout.num_inputs(),
        outputs: layout.num_outputs(),
        dc_ratio: benchmark.dc_ratio(),
        halves,
        time_sift,
    }
}

/// [`measure_benchmark`] inside a panic quarantine: a panicking benchmark
/// yields `Err(payload)` instead of aborting the whole table run, so batch
/// binaries can record the casualty and keep measuring the rest.
///
/// The panicked run's manager is dropped wholesale (nothing of it is
/// reused), which is the batch-level analogue of poisoning a shared one.
///
/// # Errors
///
/// Returns the panic payload, rendered as text.
pub fn measure_benchmark_quarantined(
    benchmark: &dyn Benchmark,
    options: &PipelineOptions,
) -> Result<Measurement, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        measure_benchmark(benchmark, options)
    }))
    .map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_funcs::RadixConverter;

    #[test]
    fn pipeline_on_a_small_converter() {
        let conv = RadixConverter::new(3, 3);
        let m = measure_benchmark(
            &conv,
            &PipelineOptions {
                sift_passes: 1,
                ..PipelineOptions::default()
            },
        );
        assert_eq!(m.inputs, 6);
        assert_eq!(m.halves.len(), 2);
        for h in &m.halves {
            assert!(h.isf.max_width <= h.dc0.max_width + h.dc0.max_width);
            assert!(h.alg33.max_width <= h.isf.max_width);
            assert!(h.alg31.max_width <= h.isf.max_width);
            assert!(h.alg31.nodes > 0);
        }
    }

    #[test]
    fn pipeline_without_sifting() {
        let conv = RadixConverter::new(5, 2);
        let m = measure_benchmark(
            &conv,
            &PipelineOptions {
                sift_passes: 0,
                ..PipelineOptions::default()
            },
        );
        assert!(m.time_sift < Duration::from_millis(1), "sifting skipped");
        assert!(m.halves[0].isf.max_width >= 1);
    }
}
