//! End-to-end contract of the `bddcf-analyze` binary: the exit codes
//! (0 clean / 1 findings / 2 usage or I/O error) and the shared
//! `// xlint: allow(XLnnn)` waiver syntax apply to the XL2xx concurrency
//! series exactly as they do to XL1xx.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Builds a throwaway workspace containing one crate with `source` as
/// its lib.rs and returns its root.
fn scratch_workspace(tag: &str, source: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bddcf-analyze-cli-{tag}-{}", std::process::id()));
    let src = root.join("crates").join("app").join("src");
    fs::create_dir_all(&src).expect("scratch dir");
    fs::write(src.join("lib.rs"), source).expect("scratch lib.rs");
    root
}

fn run_analyze(root: &PathBuf) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bddcf-analyze"))
        .arg(root)
        .output()
        .expect("bddcf-analyze runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const CLEAN: &str = "\
fn tally(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
";

// A bare-`if` condvar wait: the seeded XL203 defect.
const BUGGY: &str = "\
fn wait_ready(state: &Mutex<bool>, cv: &Condvar) {
    let mut ready = state.lock().unwrap();
    if !*ready {
        ready = cv.wait(ready).unwrap();
    }
    drop(ready);
}
";

const WAIVED: &str = "\
fn wait_ready(state: &Mutex<bool>, cv: &Condvar) {
    let mut ready = state.lock().unwrap();
    if !*ready {
        // xlint: allow(XL203) — single-shot latch, wakeup audited.
        ready = cv.wait(ready).unwrap();
    }
    drop(ready);
}
";

#[test]
fn clean_workspace_exits_zero_and_names_both_series() {
    let root = scratch_workspace("clean", CLEAN);
    let (code, stdout, _) = run_analyze(&root);
    fs::remove_dir_all(&root).ok();
    assert_eq!(code, Some(0), "clean tree must exit 0; stdout: {stdout}");
    assert!(
        stdout.contains("XL101–XL106, XL201–XL205"),
        "the clean banner covers both series: {stdout}"
    );
}

#[test]
fn xl2xx_finding_exits_one_with_machine_readable_output() {
    let root = scratch_workspace("buggy", BUGGY);
    let (code, stdout, stderr) = run_analyze(&root);
    fs::remove_dir_all(&root).ok();
    assert_eq!(code, Some(1), "findings must exit 1; stderr: {stderr}");
    assert!(
        stdout.contains("crates/app/src/lib.rs:4: [XL203]"),
        "findings print as file:line: [ID] message: {stdout}"
    );
}

#[test]
fn allow_comment_waives_an_xl2xx_finding() {
    let root = scratch_workspace("waived", WAIVED);
    let (code, stdout, _) = run_analyze(&root);
    fs::remove_dir_all(&root).ok();
    assert_eq!(
        code,
        Some(0),
        "an `xlint: allow(XL203)` comment silences the finding: {stdout}"
    );
}

#[test]
fn missing_root_exits_two() {
    let root = PathBuf::from("/nonexistent/bddcf-analyze-cli");
    let (code, _, stderr) = run_analyze(&root);
    assert_eq!(code, Some(2), "I/O errors must exit 2; stderr: {stderr}");
}
