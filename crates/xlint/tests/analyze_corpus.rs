//! Seeded-defect corpus for the XL1xx dataflow and XL2xx concurrency
//! passes.
//!
//! Each pass gets a pair of fixtures: a *buggy* source that must produce
//! exactly the expected finding(s), and the same source with the defect
//! reverted that must come back clean. This pins both directions — the
//! pass fires on the defect it was built for, and the fix it recommends
//! actually silences it. A final test re-asserts the real workspace is
//! analysis-clean from outside the crate.

use bddcf_xlint::analyze::{analyze_source, analyze_workspace};
use bddcf_xlint::{
    Finding, XL101_PROVENANCE, XL102_GC_ESCAPE, XL103_BUDGET_POLL, XL104_PANIC_SURFACE,
    XL105_CONCURRENCY, XL106_UNDOC_UNSAFE, XL201_LOCK_ORDER, XL202_BLOCKING_UNDER_GUARD,
    XL203_CONDVAR, XL204_ATOMICS, XL205_SPAWN_CAPTURE,
};
use std::path::Path;

/// Asserts the fixture yields exactly the given `(id, line)` findings.
fn expect(rel: &str, source: &str, expected: &[(&str, usize)]) {
    let findings = analyze_source(rel, source);
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.id, f.line)).collect();
    assert_eq!(
        got,
        expected,
        "fixture `{rel}` produced:\n{}",
        findings
            .iter()
            .map(Finding::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn xl101_flags_cross_manager_node_use_and_accepts_the_fix() {
    // `x` is minted by `a` but consumed through `b`.
    let buggy = "\
fn cross_manager(a: &mut BddManager, b: &mut BddManager) -> NodeId {
    let x = a.literal(Var(0), true);
    let y = b.literal(Var(1), false);
    b.and(x, y)
}
";
    expect(
        "crates/decomp/src/chart.rs",
        buggy,
        &[(XL101_PROVENANCE, 4)],
    );

    // Reverted: every node stays with the manager that created it.
    let clean = "\
fn cross_manager(a: &mut BddManager, _b: &mut BddManager) -> NodeId {
    let x = a.literal(Var(0), true);
    let y = a.literal(Var(1), false);
    a.and(x, y)
}
";
    expect("crates/decomp/src/chart.rs", clean, &[]);
}

#[test]
fn xl102_flags_unrooted_store_across_gc_and_accepts_the_fix() {
    // `x` is retained by `keep` but never handed to `gc`.
    let buggy = "\
fn fill(mgr: &mut BddManager, keep: &mut Vec<NodeId>) -> NodeId {
    let x = mgr.literal(Var(0), true);
    keep.push(x);
    let live = mgr.literal(Var(1), false);
    mgr.gc(&[live])[0]
}
";
    expect("crates/decomp/src/cache.rs", buggy, &[(XL102_GC_ESCAPE, 3)]);

    // Reverted: the stored id is routed through a `roots` set before gc.
    let clean = "\
fn fill(mgr: &mut BddManager, keep: &mut Vec<NodeId>) -> NodeId {
    let x = mgr.literal(Var(0), true);
    keep.push(x);
    let mut roots = Vec::new();
    roots.push(x);
    mgr.gc(&roots)[0]
}
";
    expect("crates/decomp/src/cache.rs", clean, &[]);
}

#[test]
fn xl103_flags_unpolled_working_loop_and_accepts_the_fix() {
    // driver.rs is a governed file: the loop does manager work on every
    // iteration but never polls the budget.
    let buggy = "\
fn saturate(mgr: &mut BddManager, mut acc: NodeId) -> NodeId {
    for _ in 0..8 {
        acc = mgr.and(acc, acc);
    }
    acc
}
";
    expect(
        "crates/core/src/driver.rs",
        buggy,
        &[(XL103_BUDGET_POLL, 2)],
    );

    // Reverted: every iteration path charges the budget first.
    let clean = "\
fn saturate(mgr: &mut BddManager, mut acc: NodeId) -> Result<NodeId, Error> {
    for _ in 0..8 {
        mgr.charge(1)?;
        acc = mgr.and(acc, acc);
    }
    Ok(acc)
}
";
    expect("crates/core/src/driver.rs", clean, &[]);
}

#[test]
fn xl104_flags_raw_index_on_governed_path_and_accepts_the_fix() {
    // synth.rs is a governed file: raw indexing can panic mid-synthesis.
    let buggy = "\
fn cell_output(table: &[u64], i: usize) -> u64 {
    table[i]
}
";
    expect(
        "crates/cascade/src/synth.rs",
        buggy,
        &[(XL104_PANIC_SURFACE, 2)],
    );

    // Reverted: the lookup degrades instead of panicking.
    let clean = "\
fn cell_output(table: &[u64], i: usize) -> u64 {
    table.get(i).copied().unwrap_or(0)
}
";
    expect("crates/cascade/src/synth.rs", clean, &[]);
}

#[test]
fn xl105_flags_interior_mutability_in_sharding_module_and_accepts_the_fix() {
    // pipeline.rs is scheduled for sharding: RefCell state would not
    // survive the parallel split.
    let buggy = "\
fn widths(shared: &RefCell<Vec<u64>>) -> usize {
    shared.borrow().len()
}
";
    expect(
        "crates/bench/src/pipeline.rs",
        buggy,
        &[(XL105_CONCURRENCY, 1)],
    );

    // Reverted: exclusive ownership, nothing hidden from the split.
    let clean = "\
fn widths(shared: &[u64]) -> usize {
    shared.len()
}
";
    expect("crates/bench/src/pipeline.rs", clean, &[]);
}

#[test]
fn xl106_flags_undocumented_unsafe_and_accepts_the_fix() {
    let buggy = "\
fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
";
    expect("crates/io/src/raw.rs", buggy, &[(XL106_UNDOC_UNSAFE, 2)]);

    // Reverted: the invariant is stated where the unsafe happens.
    let clean = "\
fn first_byte(bytes: &[u8]) -> u8 {
    // SAFETY: callers guarantee `bytes` is non-empty, so the pointer
    // read stays in bounds.
    unsafe { *bytes.as_ptr() }
}
";
    expect("crates/io/src/raw.rs", clean, &[]);
}

#[test]
fn xl201_flags_a_lock_order_inversion_with_both_witnesses_and_accepts_the_fix() {
    // `forward` takes a before b; `backward` takes b before a: the
    // classic two-thread deadlock schedule.
    let buggy = "\
fn forward(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    drop(gb);
    drop(ga);
}
fn backward(a: &Mutex<u64>, b: &Mutex<u64>) {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    drop(ga);
    drop(gb);
}
";
    expect(
        "crates/serve/src/worker.rs",
        buggy,
        &[(XL201_LOCK_ORDER, 3)],
    );
    // The one finding carries the witness path for *both* directions of
    // the inversion.
    let finding = analyze_source("crates/serve/src/worker.rs", buggy)
        .into_iter()
        .next()
        .expect("one finding");
    assert!(
        finding.message.contains("witness `a` -> `b`")
            && finding.message.contains("witness `b` -> `a`"),
        "both witness paths must be reported: {}",
        finding.message
    );

    // Reverted: both functions agree on the a-then-b order.
    let clean = "\
fn forward(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    drop(gb);
    drop(ga);
}
fn backward(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    drop(gb);
    drop(ga);
}
";
    expect("crates/serve/src/worker.rs", clean, &[]);
}

#[test]
fn xl202_flags_file_io_under_a_guard_and_accepts_the_fix() {
    // The spool write runs while the events guard is live.
    let buggy = "\
fn drain(events: &Mutex<Vec<u64>>, out: &mut File) {
    let guard = events.lock().unwrap();
    out.write_all(b\"batch\").unwrap();
    drop(guard);
}
";
    expect(
        "crates/serve/src/worker.rs",
        buggy,
        &[(XL202_BLOCKING_UNDER_GUARD, 3)],
    );

    // Reverted: the guard is dropped before the blocking write.
    let clean = "\
fn drain(events: &Mutex<Vec<u64>>, out: &mut File) {
    let guard = events.lock().unwrap();
    drop(guard);
    out.write_all(b\"batch\").unwrap();
}
";
    expect("crates/serve/src/worker.rs", clean, &[]);
}

#[test]
fn xl203_flags_a_bare_if_condvar_wait_and_accepts_the_fix() {
    // An `if` around the wait misses spurious wakeups: the predicate is
    // never re-checked after the wait returns.
    let buggy = "\
fn wait_ready(state: &Mutex<bool>, cv: &Condvar) {
    let mut ready = state.lock().unwrap();
    if !*ready {
        ready = cv.wait(ready).unwrap();
    }
    drop(ready);
}
";
    expect("crates/serve/src/worker.rs", buggy, &[(XL203_CONDVAR, 4)]);

    // Reverted: the canonical predicate loop.
    let clean = "\
fn wait_ready(state: &Mutex<bool>, cv: &Condvar) {
    let mut ready = state.lock().unwrap();
    while !*ready {
        ready = cv.wait(ready).unwrap();
    }
    drop(ready);
}
";
    expect("crates/serve/src/worker.rs", clean, &[]);
}

#[test]
fn xl204_flags_a_relaxed_publish_and_accepts_the_fix() {
    // pool.rs is in the sharding (cross-thread) scope; `flag` is stored
    // Relaxed here and loaded in another function, so the data written
    // before the flag flip is unordered with it.
    let buggy = "\
fn publish(flag: &AtomicBool, data: &AtomicU64) {
    data.store(42, Ordering::Relaxed);
    flag.store(true, Ordering::Relaxed);
}
fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}
";
    expect("crates/serve/src/pool.rs", buggy, &[(XL204_ATOMICS, 3)]);

    // Reverted: a Release store paired with an Acquire load.
    let clean = "\
fn publish(flag: &AtomicBool, data: &AtomicU64) {
    data.store(42, Ordering::Relaxed);
    flag.store(true, Ordering::Release);
}
fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
";
    expect("crates/serve/src/pool.rs", clean, &[]);
}

#[test]
fn xl205_flags_a_node_id_captured_by_spawn_and_accepts_the_waiver() {
    // `root` is minted by the manager, then smuggled into a worker
    // thread by closure capture.
    let buggy = "\
fn fanout(mgr: &mut BddManager) -> NodeId {
    let root = mgr.literal(Var(0), true);
    let h = std::thread::spawn(move || root);
    h.join().unwrap()
}
";
    expect(
        "crates/serve/src/worker.rs",
        buggy,
        &[(XL205_SPAWN_CAPTURE, 3)],
    );

    // Reverted: the capture is declared rooted where it crosses.
    let clean = "\
fn fanout(mgr: &mut BddManager) -> NodeId {
    let root = mgr.literal(Var(0), true);
    // Snapshot is pinned in the root set first. xlint: rooted
    let h = std::thread::spawn(move || root);
    h.join().unwrap()
}
";
    expect("crates/serve/src/worker.rs", clean, &[]);
}

#[test]
fn the_workspace_stays_xl1xx_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xlint sits two levels below the root");
    let findings = analyze_workspace(root).expect("workspace readable");
    let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
    assert!(findings.is_empty(), "{}", rendered.join("\n"));
}
