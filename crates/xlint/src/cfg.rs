//! Poll-aware control-flow queries on top of the vendored `syn` CFG
//! builder — the XL103 (budget-poll) core.
//!
//! A node *polls* when its flat tokens name the budget/cancel surface
//! (`charge`, `is_cancelled`, a `try_*`/`*_governed` call, …) or a
//! function whose workspace summary polls transitively. A loop is
//! reported when some path from the body entry back to the iteration
//! boundary avoids every polling node — i.e. the loop can spin without
//! ever consulting `Budget`/`CancelToken`.

use syn::body::parse_block;
use syn::cfg::{Cfg, CfgNode};
use syn::{ItemFn, TokenStream};

use crate::dataflow::Summaries;
use crate::INFALLIBLE_OPS;

/// One loop that can iterate without polling.
#[derive(Debug)]
pub struct UnpolledLoop {
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// True when the loop body touches the manager (the reason the loop
    /// is worth governing at all).
    pub does_work: bool,
}

fn node_polls(node: &CfgNode, summaries: &Summaries) -> bool {
    node.tokens.idents().any(|t| summaries.polls(&t.text))
}

/// True when the fragment touches the manager: an infallible op, a
/// budgeted twin, a governed entry, or a `gc`.
fn node_works(tokens: &TokenStream) -> bool {
    tokens.idents().any(|t| {
        let base = t.text.strip_prefix("try_").unwrap_or(&t.text);
        INFALLIBLE_OPS.contains(&base)
            || base == "gc"
            || t.text.ends_with("_governed")
            || t.text.contains("_governed_")
    })
}

/// Every loop of `func` that has an iteration path avoiding all polls.
pub fn unpolled_loops(func: &ItemFn, summaries: &Summaries) -> Vec<UnpolledLoop> {
    let Some(body) = &func.block else {
        return Vec::new();
    };
    let cfg = Cfg::build(&parse_block(body));
    let mut out = Vec::new();
    for l in &cfg.loops {
        // A polling header (while-condition) covers every iteration.
        if node_polls(&cfg.nodes[l.header], summaries) {
            continue;
        }
        let avoid = |n: &CfgNode| node_polls(n, summaries);
        if !cfg.body_path_avoiding(l.body_entry, l.back_target, &avoid) {
            continue;
        }
        let does_work = l
            .body_nodes
            .clone()
            .any(|i| node_works(&cfg.nodes[i].tokens))
            || node_works(&cfg.nodes[l.header].tokens);
        out.push(UnpolledLoop {
            line: l.line,
            does_work,
        });
    }
    out
}
