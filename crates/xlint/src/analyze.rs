//! `bddcf-analyze` — the XL1xx dataflow lint series.
//!
//! Where the XL0xx lints ([`crate::lint_source`]) scan flat tokens, the
//! XL1xx passes analyze statement-structured bodies (via the vendored
//! `syn` body parser and CFG builder) with workspace-wide function
//! summaries:
//!
//! - **XL101** NodeId provenance — node ids must stay with the manager
//!   that created them (across lets, reassignments, fields, and calls
//!   with known manager/node parameter shapes).
//! - **XL102** GC-escape — a node id stored into a field or collection
//!   that is live across a later `gc()` must be rooted (or carry an
//!   `// xlint: rooted` waiver).
//! - **XL103** budget-poll — every working loop on a governed path must
//!   poll `Budget`/`CancelToken` on every iteration path.
//! - **XL104** panic-surface — no raw indexing/slicing or `*_unchecked`
//!   calls on governed paths.
//! - **XL105** concurrency-readiness — no interior mutability in modules
//!   the ROADMAP schedules for sharding.
//! - **XL106** undocumented `unsafe` — every `unsafe` needs a
//!   `// SAFETY:` comment.
//!
//! The XL2xx concurrency series builds on the same body IR plus
//! interprocedural lock/blocking summaries ([`crate::dataflow::ConcSummaries`]):
//!
//! - **XL201** lock-order inversion — a cycle in the whole-program
//!   lock-acquisition graph; the finding carries every witness path.
//! - **XL202** blocking-under-guard — I/O, `join`, channel receives,
//!   `sleep`, or governed synthesis while a guard is live
//!   (`Condvar::wait` is the one legal block).
//! - **XL203** Condvar discipline — waits must sit in predicate loops
//!   re-checked on the back-edge, and each condvar pairs with exactly
//!   one mutex.
//! - **XL204** atomics ordering — a `Relaxed` store observed cross-thread
//!   needs a Release/Acquire pair or an `// xlint: relaxed-ok` waiver.
//! - **XL205** spawn-capture provenance — spawn closures must not
//!   capture `NodeId`s or manager references without an
//!   `// xlint: rooted` marker.
//!
//! Waivers use the same `// xlint: allow(XLnnn)` comment syntax as the
//! XL0xx series (same line or the line above).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::dataflow::{ConcSummaries, Summaries};
use crate::{allow_map, collect_rs_files, passes, Finding, XL000_PARSE};

/// Analyzes a set of `(workspace-relative path, source)` files as one
/// unit: summaries are built across all of them, then every XL1xx pass
/// runs on each. Unparseable files surface as [`XL000_PARSE`] findings.
pub fn analyze_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut parsed = Vec::new();
    for (rel, source) in files {
        match syn::parse_file(source) {
            Ok(file) => parsed.push((rel.clone(), file)),
            Err(e) => findings.push(Finding {
                file: rel.clone(),
                line: e.line,
                id: XL000_PARSE,
                message: format!("cannot parse: {}", e.message),
            }),
        }
    }
    let summaries = Summaries::build(&parsed);
    let conc = ConcSummaries::build(&parsed);
    let allows: HashMap<String, HashMap<usize, Vec<String>>> = files
        .iter()
        .map(|(rel, source)| (rel.clone(), allow_map(source)))
        .collect();
    let no_allow = HashMap::new();
    for (rel, source) in files {
        let Some((_, file)) = parsed.iter().find(|(r, _)| r == rel) else {
            continue;
        };
        let allow = allows.get(rel).unwrap_or(&no_allow);
        passes::provenance::run(rel, file, allow, &summaries, &mut findings);
        passes::gc_escape::run(rel, file, source, allow, &summaries, &mut findings);
        passes::budget_poll::run(rel, file, allow, &summaries, &mut findings);
        passes::panic_surface::run(rel, file, allow, &mut findings);
        passes::blocking::run(rel, file, allow, &conc, &mut findings);
        passes::spawn_capture::run(rel, file, source, allow, &summaries, &mut findings);
        if let Ok(tokens) = syn::tokenize(source) {
            passes::concurrency::run(rel, &tokens, allow, &mut findings);
            passes::unsafe_doc::run(rel, &tokens, source, allow, &mut findings);
        }
    }
    passes::lock_order::run(&parsed, &allows, &conc, &mut findings);
    passes::condvar::run(&parsed, &allows, &conc, &mut findings);
    passes::atomics::run(files, &parsed, &allows, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.id).cmp(&(&b.file, b.line, b.id)));
    findings
}

/// Analyzes one file in isolation (fixture helper; summaries come from
/// that file alone).
pub fn analyze_source(rel: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[(rel.to_string(), source.to_string())])
}

/// Runs the XL1xx series over every `.rs` file under `<root>/src` and
/// `<root>/crates/*/src` (the lint crate itself excluded, like
/// [`crate::lint_workspace`]).
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut paths)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xlint"))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut paths)?;
            }
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, fs::read_to_string(&path)?));
    }
    Ok(analyze_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_real_workspace_is_xl1xx_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/xlint sits two levels below the root");
        let findings = analyze_workspace(root).expect("workspace readable");
        let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
        assert!(findings.is_empty(), "{}", rendered.join("\n"));
    }
}
