//! Intraprocedural dataflow over statement-structured bodies: manager
//! identities, `NodeId` provenance, and function summaries.
//!
//! The XL101/XL102 passes consume a *linear action trace* of a function:
//! every call event with its receiver resolved to a manager identity and
//! its arguments resolved to node provenances, plus field stores and
//! `roots`-mentioning statements. Branches are walked in source order
//! with a shared environment (a linearization — sound enough for a lint:
//! provenance is only ever *assigned*, never speculatively merged, and a
//! binding whose provenance would differ across branches keeps the last
//! one written, which can at worst miss a finding in one branch, never
//! invent a cross-manager flow that no branch contains).
//!
//! Manager identities:
//! - every parameter whose type mentions `BddManager`/`MtManager` gets a
//!   fresh identity; `self` inside such an impl likewise;
//! - every `BddManager::…(…)`/`MtManager::…(…)` associated call bound by
//!   a `let` creates a fresh identity (covers `new`, `from_snapshot`);
//! - `.clone()` of a manager shares the original's identity (documented:
//!   node ids of the original remain valid in the clone);
//! - conventional owner fields (`self.mgr`, `cf.manager()`, …) normalize
//!   to one canonical chain; in a function with *no* manager parameters
//!   they all resolve to a single ambient identity (the enclosing
//!   object's manager), which is also what `NodeId` parameters default
//!   to. With explicit manager parameters in scope, `NodeId` parameters
//!   belong to the *first* manager parameter, and owner fields get their
//!   own identity — mixing them is exactly the hazard XL101 reports.

use std::collections::HashMap;

use syn::body::{call_events, parse_block, ArgShape, Block, CallEvent, Stmt};
use syn::{ItemFn, Token, TokenKind, TokenStream};

use crate::INFALLIBLE_OPS;

/// Names that poll the budget/cancel state (directly or by convention).
pub(crate) fn is_poll_name(name: &str) -> bool {
    matches!(
        name,
        "charge" | "is_cancelled" | "terminal_cause" | "check_budget" | "checkpoint"
    ) || name.starts_with("try_")
        || name.ends_with("_governed")
        || name.contains("_governed_")
}

/// True for manager method names that *produce* node ids (infallible ops,
/// their `try_` twins, and `gc`, whose return is the remapped roots).
fn is_node_producing(name: &str) -> bool {
    let base = name.strip_prefix("try_").unwrap_or(name);
    INFALLIBLE_OPS.contains(&base) || base == "gc"
}

/// Summary of one named function, for cross-function checks.
#[derive(Clone, Debug, Default)]
pub struct FnSummary {
    /// Body references the budget/poll surface (transitively closed).
    pub polls: bool,
    /// 0-based indices of parameters whose type mentions a manager.
    pub manager_params: Vec<usize>,
    /// The subset of [`FnSummary::manager_params`] taken by `&mut` or by
    /// value — the only managers a call can create new nodes in.
    pub mut_manager_params: Vec<usize>,
    /// 0-based indices of parameters whose type mentions `NodeId`.
    pub node_params: Vec<usize>,
    /// Return type mentions `NodeId`.
    pub returns_node: bool,
}

/// Per-workspace function summaries, keyed by bare function name.
/// Same-named functions with conflicting shapes are dropped (ambiguous).
#[derive(Debug, Default)]
pub struct Summaries {
    fns: HashMap<String, Option<FnSummary>>,
}

impl Summaries {
    /// The summary for `name`, unless unknown or ambiguous.
    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.fns.get(name).and_then(|s| s.as_ref())
    }

    /// True when calling `name` polls the budget (by summary or by
    /// naming convention).
    pub fn polls(&self, name: &str) -> bool {
        is_poll_name(name) || self.get(name).is_some_and(|s| s.polls)
    }

    /// Builds summaries for every non-test function of the given parsed
    /// files, closing `polls` transitively over the call-by-name graph.
    pub fn build(files: &[(String, syn::File)]) -> Summaries {
        struct Raw {
            summary: FnSummary,
            body_idents: Vec<String>,
        }
        let mut raw: HashMap<String, Option<Raw>> = HashMap::new();
        for (_rel, file) in files {
            crate::for_each_fn(&file.items, &mut |func| {
                let name = func.sig.ident.name.clone();
                let params = params_of(func);
                let mut summary = FnSummary {
                    returns_node: returns_node(func),
                    ..FnSummary::default()
                };
                let mut body_idents = Vec::new();
                if let Some(body) = &func.block {
                    summary.polls = body.idents().any(|t| is_poll_name(&t.text));
                    body_idents = body.idents().map(|t| t.text.clone()).collect();
                }
                for (i, p) in params.iter().enumerate() {
                    match p.kind {
                        ParamKind::Manager => {
                            summary.manager_params.push(i);
                            if p.mutable {
                                summary.mut_manager_params.push(i);
                            }
                        }
                        ParamKind::Node => summary.node_params.push(i),
                        ParamKind::Other => {}
                    }
                }
                let entry = Raw {
                    summary,
                    body_idents,
                };
                match raw.entry(name) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(Some(entry));
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        // Keep only shape-identical duplicates; `polls`
                        // merges conservatively (all must poll).
                        let keep = o.get_mut();
                        match keep {
                            Some(prev)
                                if prev.summary.manager_params == entry.summary.manager_params
                                    && prev.summary.node_params == entry.summary.node_params =>
                            {
                                prev.summary.polls &= entry.summary.polls;
                                prev.summary.returns_node &= entry.summary.returns_node;
                                prev.body_idents.extend(entry.body_idents);
                            }
                            _ => *keep = None,
                        }
                    }
                }
            });
        }
        // Transitive polls: a function polls if it names a polling one.
        loop {
            let polling: Vec<String> = raw
                .iter()
                .filter(|(_, r)| r.as_ref().is_some_and(|r| r.summary.polls))
                .map(|(n, _)| n.clone())
                .collect();
            let mut changed = false;
            for r in raw.values_mut().flatten() {
                if !r.summary.polls
                    && r.body_idents
                        .iter()
                        .any(|id| polling.iter().any(|p| p == id))
                {
                    r.summary.polls = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Summaries {
            fns: raw
                .into_iter()
                .map(|(n, r)| (n, r.map(|r| r.summary)))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Concurrency summaries (the XL2xx side of the summary store)
// ---------------------------------------------------------------------

/// How a lock acquired inside a function is identified at its call
/// sites.
///
/// Lock identity is the *last segment* of the acquisition chain
/// (`self.state.lock()` → `state`, `lock(&store.cache)` → `cache`):
/// field names are stable across the `self`/`shared`/`inner` aliases a
/// guard travels through, which is what a whole-program lock-order graph
/// needs. Two same-named fields of unrelated structs merge under this
/// key — documented trade-off: it can report a spurious edge, never
/// hide a real one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Acq {
    /// A fixed identity (field or static name).
    Fixed(String),
    /// Whichever lock the caller passes as parameter `i` (0-based,
    /// `self` counts as parameter 0 of a method).
    Param(usize),
}

/// Concurrency summary of one function: what it (transitively) acquires
/// and whether it blocks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConcFnSummary {
    /// Lock identities acquired anywhere in the body (transitively
    /// closed over named calls).
    pub acquires: Vec<Acq>,
    /// Set when the function is a lock helper: its return value is a
    /// live guard over this lock (return type names a `…Guard` and the
    /// body performs exactly one acquisition).
    pub returns_guard: Option<Acq>,
    /// Description of the first (transitively reached) blocking
    /// operation, or `None` when the function never blocks.
    /// `Condvar::wait` is exempt by design — it is the one legal block
    /// under a guard.
    pub blocking: Option<String>,
}

/// Per-workspace concurrency summaries, keyed by `(name, is_method)` —
/// a free `lock(&mutex)` helper and a `self.lock()` method coexist.
/// Same-keyed functions with different summaries are dropped
/// (ambiguous), like [`Summaries`].
#[derive(Debug, Default)]
pub struct ConcSummaries {
    fns: HashMap<(String, bool), Option<ConcFnSummary>>,
}

impl ConcSummaries {
    /// The summary a call event resolves to, unless unknown or
    /// ambiguous.
    pub fn of_call(&self, event: &CallEvent) -> Option<&ConcFnSummary> {
        self.fns
            .get(&(event.name.clone(), event.is_method))
            .and_then(|s| s.as_ref())
    }

    /// Builds concurrency summaries for every non-test function of the
    /// given parsed files, closing `acquires` and `blocking`
    /// transitively over the call graph (lock identities passed as
    /// parameters are resolved through the call-site arguments).
    pub fn build(files: &[(String, syn::File)]) -> ConcSummaries {
        struct Raw {
            summary: ConcFnSummary,
            calls: Vec<CallEvent>,
            params: Vec<String>,
        }
        let mut raw: HashMap<(String, bool), Option<Raw>> = HashMap::new();
        for (_rel, file) in files {
            crate::for_each_fn(&file.items, &mut |func| {
                let params: Vec<String> = params_of(func).iter().map(|p| p.name.clone()).collect();
                let is_method = params.first().is_some_and(|p| p == "self");
                let mut summary = ConcFnSummary::default();
                let mut calls = Vec::new();
                if let Some(body) = &func.block {
                    calls = call_events(body);
                    for ev in &calls {
                        if let Some(acq) = direct_lock_acquisition(ev, &params) {
                            if !summary.acquires.contains(&acq) {
                                summary.acquires.push(acq);
                            }
                        } else if summary.blocking.is_none() {
                            if let Some(what) = blocking_call(ev) {
                                summary.blocking = Some(what);
                            }
                        }
                    }
                }
                if returns_guard_type(func) && summary.acquires.len() == 1 {
                    summary.returns_guard = summary.acquires.first().cloned();
                }
                let entry = Raw {
                    summary,
                    calls,
                    params,
                };
                match raw.entry((func.sig.ident.name.clone(), is_method)) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(Some(entry));
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        // Identical twins (the free `lock` helper is
                        // defined per-crate) merge; anything else is
                        // ambiguous and dropped.
                        let keep = o.get_mut();
                        match keep {
                            Some(prev) if prev.summary == entry.summary => {}
                            _ => *keep = None,
                        }
                    }
                }
            });
        }
        // Transitive closure: a caller acquires what its callees
        // acquire (resolved through arguments) and blocks when a callee
        // blocks.
        loop {
            let snapshot: HashMap<(String, bool), ConcFnSummary> = raw
                .iter()
                .filter_map(|(k, r)| r.as_ref().map(|r| (k.clone(), r.summary.clone())))
                .collect();
            let mut changed = false;
            for r in raw.values_mut().flatten() {
                for ev in &r.calls {
                    let Some(callee) = snapshot.get(&(ev.name.clone(), ev.is_method)) else {
                        continue;
                    };
                    for acq in &callee.acquires {
                        if let Some(resolved) = resolve_acq(acq, ev, &r.params) {
                            if !r.summary.acquires.contains(&resolved) {
                                r.summary.acquires.push(resolved);
                                changed = true;
                            }
                        }
                    }
                    if r.summary.blocking.is_none() {
                        if let Some(b) = &callee.blocking {
                            r.summary.blocking = Some(format!("{b} (via `{}`)", ev.name));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        ConcSummaries {
            fns: raw
                .into_iter()
                .map(|(k, r)| (k, r.map(|r| r.summary)))
                .collect(),
        }
    }
}

/// The lock identity of a receiver/argument chain in a given parameter
/// scope: a single-segment chain naming a parameter stays positional
/// (so helpers compose); anything else keys on its last segment.
pub(crate) fn chain_acq(chain: &[String], params: &[String]) -> Acq {
    let strip = |s: &str| s.strip_suffix("()").unwrap_or(s).to_string();
    if chain.len() == 1 {
        let name = strip(&chain[0]);
        if let Some(i) = params.iter().position(|p| *p == name) {
            return Acq::Param(i);
        }
    }
    Acq::Fixed(strip(chain.last().map(String::as_str).unwrap_or("")))
}

/// Maps a callee-side [`Acq`] to the caller's scope through one call
/// event (`None` when the argument is not a simple path).
pub(crate) fn resolve_acq(acq: &Acq, ev: &CallEvent, caller_params: &[String]) -> Option<Acq> {
    match acq {
        Acq::Fixed(id) => Some(Acq::Fixed(id.clone())),
        Acq::Param(i) => {
            if ev.is_method && *i == 0 {
                // Callee parameter 0 is `self` = the call's receiver.
                return ev.receiver.as_ref().map(|c| chain_acq(c, caller_params));
            }
            let j = if ev.is_method { *i - 1 } else { *i };
            match ev.args.get(j) {
                Some(ArgShape::Path { segments, .. }) => Some(chain_acq(segments, caller_params)),
                _ => None,
            }
        }
    }
}

/// A zero-argument `.lock()`/`.read()`/`.write()` on a simple chain —
/// the std `Mutex`/`RwLock` acquisition idiom. The zero-arity
/// requirement disambiguates `RwLock::read`/`write` from buffer I/O.
pub(crate) fn direct_lock_acquisition(ev: &CallEvent, params: &[String]) -> Option<Acq> {
    if ev.is_method && ev.args.is_empty() && matches!(ev.name.as_str(), "lock" | "read" | "write") {
        // A bare `self.lock()` is a user helper method, not a std
        // mutex; the caller resolves it through its summary instead.
        let chain = ev.receiver.as_ref()?;
        if chain.len() == 1 && chain[0] == "self" {
            return None;
        }
        return Some(chain_acq(chain, params));
    }
    None
}

/// Describes a blocking call event, or `None`. `Condvar::wait*` with a
/// guard argument is the one legal block under a lock and is never
/// reported here (zero-argument `wait` is `Child::wait`, which blocks).
pub(crate) fn blocking_call(ev: &CallEvent) -> Option<String> {
    let n = ev.name.as_str();
    // Governed engine entry points: budgeted, potentially long-running.
    if n.starts_with("reduce_") || n.starts_with("synthesize") {
        return Some(format!(
            "governed call `{n}` (budgeted, potentially long-running)"
        ));
    }
    if ev.is_method {
        let blocks = match n {
            // Thread/process joins, channel receives, fsyncs, accepts.
            "join" | "recv" | "flush" | "sync_all" | "sync_data" | "accept" | "wait" => {
                ev.args.is_empty()
            }
            // Buffer I/O (the zero-argument forms are `RwLock`
            // acquisitions, handled by the guard tracker).
            "read" | "write" | "read_exact" | "read_to_end" | "read_to_string" | "write_all"
            | "write_fmt" | "set_len" => !ev.args.is_empty(),
            "recv_timeout" | "send_timeout" | "park_timeout" | "write_atomic" | "sync_dir" => true,
            _ => false,
        };
        return blocks.then(|| format!("`.{n}(…)`"));
    }
    let prev = ev.path.len().checked_sub(2).map(|i| ev.path[i].as_str());
    let blocks = n == "sleep"
        || n == "park"
        || n == "write_atomic"
        || n == "sync_dir"
        || prev == Some("fs")
        || (matches!(prev, Some("File" | "OpenOptions"))
            && matches!(n, "open" | "create" | "create_new" | "options"))
        || (matches!(
            prev,
            Some("TcpStream" | "TcpListener" | "UnixStream" | "UnixListener")
        ) && matches!(n, "connect" | "bind" | "connect_timeout"));
    blocks.then(|| format!("`{}(…)`", ev.path.join("::")))
}

/// True when the return type (tokens after `->`) names a guard type
/// (`MutexGuard`, `RwLockReadGuard`, …).
fn returns_guard_type(func: &ItemFn) -> bool {
    let toks = &func.sig.tokens.tokens;
    let Some(arrow) = toks
        .windows(2)
        .position(|w| w[0].is_punct('-') && w[1].is_punct('>'))
    else {
        return false;
    };
    toks[arrow + 2..]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text.contains("Guard"))
}

/// Parameter classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// Type mentions `BddManager`/`MtManager`.
    Manager,
    /// Type mentions `NodeId`/`MtNodeId`.
    Node,
    /// Anything else.
    Other,
}

/// One parsed parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`self` for receivers).
    pub name: String,
    /// Classification by type text.
    pub kind: ParamKind,
    /// Taken by `&mut` or by value (node creation is possible).
    pub mutable: bool,
}

/// Parses the parameter list out of a signature token stream (generics
/// skipped with `->`-aware angle tracking; top-level comma split).
pub fn params_of(func: &ItemFn) -> Vec<Param> {
    let toks = &func.sig.tokens.tokens;
    let name = &func.sig.ident.name;
    // Find the parameter parens: the first depth-0 `(` after the fn name,
    // skipping a generics group.
    let mut i = toks
        .iter()
        .position(|t| t.is_ident(name))
        .map_or(0, |p| p + 1);
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if angle == 0 && t.is_punct('(') {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            angle -= 1;
        }
        i += 1;
    }
    if i >= toks.len() {
        return Vec::new();
    }
    // Collect the group, split at top-level commas.
    let mut groups: Vec<Vec<&Token>> = vec![Vec::new()];
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 && t.is_punct(')') {
                break;
            }
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !toks[j - 1].is_punct('-') {
            angle -= 1;
        }
        if depth == 0 && angle <= 0 && t.is_punct(',') {
            groups.push(Vec::new());
        } else {
            groups.last_mut().expect("non-empty").push(t);
        }
        j += 1;
    }
    let mut params = Vec::new();
    for g in groups {
        if g.is_empty() {
            continue;
        }
        let first_core = g
            .iter()
            .find(|t| !(t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime));
        if first_core.is_some_and(|t| t.is_ident("self")) {
            params.push(Param {
                name: "self".to_string(),
                kind: ParamKind::Other, // the caller upgrades manager-impl receivers
                mutable: g.iter().any(|t| t.is_ident("mut")),
            });
            continue;
        }
        let colon = g.iter().position(|t| t.is_punct(':'));
        let (name_part, ty_part) = match colon {
            Some(c) => (&g[..c], &g[c + 1..]),
            None => (&g[..], &[][..]),
        };
        let Some(name_tok) = name_part.iter().rev().find(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        let mentions = |needle: &str| ty_part.iter().any(|t| t.is_ident(needle));
        let kind = if mentions("BddManager") || mentions("MtManager") {
            ParamKind::Manager
        } else if mentions("NodeId") || mentions("MtNodeId") {
            ParamKind::Node
        } else {
            ParamKind::Other
        };
        // `&mut T` and by-value `T` can create nodes; `&T` cannot.
        let mutable =
            ty_part.iter().any(|t| t.is_ident("mut")) || !ty_part.iter().any(|t| t.is_punct('&'));
        params.push(Param {
            name: name_tok.text.clone(),
            kind,
            mutable,
        });
    }
    params
}

/// True when the return type (tokens after `->`) mentions `NodeId`.
fn returns_node(func: &ItemFn) -> bool {
    let toks = &func.sig.tokens.tokens;
    let Some(arrow) = toks
        .windows(2)
        .position(|w| w[0].is_punct('-') && w[1].is_punct('>'))
    else {
        return false;
    };
    toks[arrow + 2..]
        .iter()
        .any(|t| t.is_ident("NodeId") || t.is_ident("MtNodeId"))
}

/// True when a call event produces a `NodeId` (manager node ops and
/// summary-known returns) — the XL205 capture classifier.
pub(crate) fn produces_node(ev: &CallEvent, summaries: &Summaries) -> bool {
    is_node_producing(&ev.name) || summaries.get(&ev.name).is_some_and(|s| s.returns_node)
}

/// The provenance environment of one function walk.
#[derive(Debug, Default)]
pub struct Env {
    managers: HashMap<String, usize>,
    nodes: HashMap<String, usize>,
    next: usize,
    /// Set when the function has no explicit manager parameters: the
    /// identity all conventional owner chains and node params share.
    ambient: Option<usize>,
}

/// Conventional names for "the manager field" of an owning object.
const MANAGER_FIELD_NAMES: &[&str] = &["mgr", "manager", "manager_mut", "mgr_mut", "bdd_manager"];

impl Env {
    fn fresh(&mut self) -> usize {
        self.next += 1;
        self.next
    }

    /// Canonical key of a dotted chain: called segments lose their `()`,
    /// conventional manager-field names collapse to `mgr`.
    fn canon(chain: &[String]) -> String {
        chain
            .iter()
            .map(|s| {
                let bare = s.strip_suffix("()").unwrap_or(s);
                if MANAGER_FIELD_NAMES.contains(&bare) {
                    "mgr"
                } else {
                    bare
                }
            })
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Resolves a chain to a manager identity, lazily registering
    /// conventional owner chains (`…​.mgr`).
    pub fn manager_of(&mut self, chain: &[String]) -> Option<usize> {
        let key = Self::canon(chain);
        if let Some(&id) = self.managers.get(&key) {
            return Some(id);
        }
        let last_is_field = chain
            .last()
            .map(|s| s.strip_suffix("()").unwrap_or(s))
            .is_some_and(|s| MANAGER_FIELD_NAMES.contains(&s));
        if last_is_field {
            let id = match self.ambient {
                Some(a) => a,
                None => self.fresh(),
            };
            self.managers.insert(key, id);
            return Some(id);
        }
        None
    }

    /// Provenance of a value chain, if tracked.
    pub fn node_of(&self, chain: &[String]) -> Option<usize> {
        self.nodes.get(&Self::canon(chain)).copied()
    }

    fn bind_manager(&mut self, name: &str, id: usize) {
        self.managers.insert(name.to_string(), id);
    }

    fn bind_node(&mut self, key: String, id: usize) {
        self.nodes.insert(key, id);
    }
}

/// One step of the linear action trace.
#[derive(Debug)]
pub enum Action {
    /// A call, with its receiver and simple-path arguments resolved.
    Call {
        /// The raw event.
        event: CallEvent,
        /// Manager identity of the receiver chain, when it is one.
        recv_manager: Option<usize>,
        /// Node provenance per argument (parallel to `event.args`).
        arg_prov: Vec<Option<usize>>,
        /// Manager identity per argument, when an argument *is* a manager.
        arg_manager: Vec<Option<usize>>,
    },
    /// `chain = value` where the left side is a dotted field chain.
    StoreField {
        /// Canonical target chain.
        target: String,
        /// Node provenance of the right side, if tracked.
        prov: Option<usize>,
        /// 1-based line.
        line: usize,
    },
    /// A statement mentioning the identifier `roots` (the rooting
    /// convention XL102 credits).
    RootsMention {
        /// Every identifier in the statement.
        idents: Vec<String>,
    },
}

/// Walks one function into its linear action trace.
pub fn trace_fn(func: &ItemFn, self_is_manager: bool, summaries: &Summaries) -> Vec<Action> {
    let mut env = Env::default();
    let params = params_of(func);
    let mut first_manager = None;
    // Each node parameter is owned by the nearest preceding *immutable*
    // manager parameter, falling back to the nearest preceding one of
    // any mutability: in the `transfer(src, dst, node)` convention the
    // node is read out of the `&` source manager while the `&mut`
    // destination only receives the rebuilt copy.
    let mut last_manager = None;
    let mut last_immutable = None;
    let mut node_bindings: Vec<(String, Option<usize>)> = Vec::new();
    for p in &params {
        if p.kind == ParamKind::Manager || (p.name == "self" && self_is_manager) {
            let id = env.fresh();
            env.bind_manager(&p.name, id);
            first_manager.get_or_insert(id);
            last_manager = Some(id);
            if !p.mutable {
                last_immutable = Some(id);
            }
        } else if p.kind == ParamKind::Node {
            node_bindings.push((p.name.clone(), last_immutable.or(last_manager)));
        }
    }
    let fallback = match first_manager {
        Some(id) => id,
        None => {
            let a = env.fresh();
            env.ambient = Some(a);
            a
        }
    };
    for (name, home) in node_bindings {
        env.bind_node(name, home.unwrap_or(fallback));
    }
    let mut trace = Vec::new();
    if let Some(body) = &func.block {
        let block = parse_block(body);
        walk_block(&block, &mut env, summaries, &mut trace);
    }
    trace
}

fn walk_block(block: &Block, env: &mut Env, summaries: &Summaries, trace: &mut Vec<Action>) {
    for stmt in &block.stmts {
        walk_stmt(stmt, env, summaries, trace);
    }
}

fn walk_stmt(stmt: &Stmt, env: &mut Env, summaries: &Summaries, trace: &mut Vec<Action>) {
    match stmt {
        Stmt::Item(_) => {}
        Stmt::Let(l) => {
            if let Some(init) = &l.init {
                for nested in &init.nested {
                    walk_stmt(nested, env, summaries, trace);
                }
                emit_fragment(&init.tokens, env, trace);
                bind_from_init(&l.names, &init.tokens, env, summaries);
            }
            if let Some(else_block) = &l.else_block {
                walk_block(else_block, env, summaries, trace);
            }
        }
        Stmt::If(i) => {
            for nested in &i.cond.nested {
                walk_stmt(nested, env, summaries, trace);
            }
            emit_fragment(&i.cond.tokens, env, trace);
            bind_let_condition(&i.cond.tokens, env, summaries);
            walk_block(&i.then_branch, env, summaries, trace);
            if let Some(e) = &i.else_branch {
                walk_block(e, env, summaries, trace);
            }
        }
        Stmt::Match(m) => {
            for nested in &m.scrutinee.nested {
                walk_stmt(nested, env, summaries, trace);
            }
            emit_fragment(&m.scrutinee.tokens, env, trace);
            // Names an arm pattern binds inherit the scrutinee's
            // provenance (the `Ok(id) => …` shape).
            let scrutinee_prov = fragment_prov(&m.scrutinee.tokens, env, summaries);
            for arm in &m.arms {
                if let Some(p) = scrutinee_prov {
                    for name in &arm.names {
                        env.bind_node(name.name.clone(), p);
                    }
                }
                walk_block(&arm.body, env, summaries, trace);
            }
        }
        Stmt::Loop(l) => {
            for nested in &l.header.nested {
                walk_stmt(nested, env, summaries, trace);
            }
            emit_fragment(&l.header.tokens, env, trace);
            bind_let_condition(&l.header.tokens, env, summaries);
            walk_block(&l.body, env, summaries, trace);
        }
        Stmt::Expr(e) => {
            for nested in &e.nested {
                walk_stmt(nested, env, summaries, trace);
            }
            emit_fragment(&e.tokens, env, trace);
            handle_assignment(&e.tokens, e.line, env, summaries, trace);
        }
    }
}

/// Emits the call events and `roots` mentions of one flat fragment.
fn emit_fragment(tokens: &TokenStream, env: &mut Env, trace: &mut Vec<Action>) {
    if tokens.contains_ident("roots") {
        trace.push(Action::RootsMention {
            idents: tokens.idents().map(|t| t.text.clone()).collect(),
        });
    }
    for event in call_events(tokens) {
        let recv_manager = event
            .receiver
            .as_deref()
            .and_then(|chain| env.manager_of(chain));
        let arg_prov: Vec<Option<usize>> = event
            .args
            .iter()
            .map(|a| match a {
                ArgShape::Path { segments, .. } => env.node_of(segments),
                ArgShape::Other => None,
            })
            .collect();
        let arg_manager: Vec<Option<usize>> = event
            .args
            .iter()
            .map(|a| match a {
                ArgShape::Path { segments, .. } => env.manager_of(segments),
                ArgShape::Other => None,
            })
            .collect();
        trace.push(Action::Call {
            event,
            recv_manager,
            arg_prov,
            arg_manager,
        });
    }
}

/// Provenance the value of a fragment would carry: the last node-producing
/// manager call, a summary-known free call, or a pure copy of a tracked
/// chain.
fn fragment_prov(tokens: &TokenStream, env: &mut Env, summaries: &Summaries) -> Option<usize> {
    let events = call_events(tokens);
    for event in events.iter().rev() {
        if event.is_method && is_node_producing(&event.name) {
            if let Some(id) = event
                .receiver
                .as_deref()
                .and_then(|chain| env.manager_of(chain))
            {
                return Some(id);
            }
        }
        if !event.is_method {
            if let Some(s) = summaries.get(&event.name) {
                if s.returns_node {
                    // The produced node belongs to the *mutable* manager
                    // argument — only a `&mut` (or owned) manager can
                    // allocate nodes, so in a two-manager helper like
                    // `transfer(src, node, dst)` the return is `dst`'s.
                    let owner = s
                        .mut_manager_params
                        .first()
                        .or_else(|| s.manager_params.first());
                    if let Some(&mi) = owner {
                        if let Some(ArgShape::Path { segments, .. }) = event.args.get(mi) {
                            if let Some(id) = env.manager_of(segments) {
                                return Some(id);
                            }
                        }
                    } else if let Some(a) = env.ambient {
                        return Some(a);
                    }
                }
            }
        }
    }
    // Pure copy: `&`/`mut`/`?`-stripped chain of idents and dots.
    let plain: Vec<&Token> = tokens
        .tokens
        .iter()
        .filter(|t| !(t.is_punct('&') || t.is_punct('?') || t.is_ident("mut")))
        .collect();
    let mut chain = Vec::new();
    let mut expect_ident = true;
    for t in &plain {
        if expect_ident {
            if t.kind != TokenKind::Ident {
                return None;
            }
            chain.push(t.text.clone());
            expect_ident = false;
        } else {
            if !t.is_punct('.') {
                return None;
            }
            expect_ident = true;
        }
    }
    if chain.is_empty() || expect_ident {
        return None;
    }
    env.node_of(&chain)
}

/// Binds `let` names from an initializer fragment.
fn bind_from_init(
    names: &[syn::Ident],
    tokens: &TokenStream,
    env: &mut Env,
    summaries: &Summaries,
) {
    // Manager-producing initializers first.
    let events = call_events(tokens);
    let manager_id = events
        .iter()
        .find_map(|e| {
            if !e.is_method
                && e.path
                    .first()
                    .is_some_and(|p| p == "BddManager" || p == "MtManager")
            {
                Some(None) // fresh identity per binding below
            } else if e.is_method && e.name == "clone" {
                e.receiver
                    .as_deref()
                    .and_then(|chain| env.manager_of(chain))
                    .map(Some)
            } else {
                None
            }
        })
        .or_else(|| {
            // `let m2 = m;` / `let m2 = &mut m;` manager aliasing.
            let plain: Vec<&Token> = tokens
                .tokens
                .iter()
                .filter(|t| !(t.is_punct('&') || t.is_ident("mut")))
                .collect();
            if plain.len() == 1 && plain[0].kind == TokenKind::Ident {
                env.manager_of(&[plain[0].text.clone()]).map(Some)
            } else {
                None
            }
        });
    if let Some(id) = manager_id {
        for name in names {
            let id = id.unwrap_or_else(|| env.fresh());
            env.bind_manager(&name.name, id);
        }
        return;
    }
    if let Some(prov) = fragment_prov(tokens, env, summaries) {
        for name in names {
            env.bind_node(name.name.clone(), prov);
        }
    } else {
        // The binding is reassigned to something untracked.
        for name in names {
            env.nodes.remove(&name.name);
        }
    }
}

/// Binds names from `if let P = expr` / `while let P = expr` headers: the
/// pattern idents inherit the expression's provenance.
fn bind_let_condition(tokens: &TokenStream, env: &mut Env, summaries: &Summaries) {
    let toks = &tokens.tokens;
    let Some(let_pos) = toks.iter().position(|t| t.is_ident("let")) else {
        return;
    };
    let Some(eq_rel) = toks[let_pos..].iter().position(|t| t.is_punct('=')) else {
        return;
    };
    let eq = let_pos + eq_rel;
    let pat = &toks[let_pos + 1..eq];
    let rhs = TokenStream {
        tokens: toks[eq + 1..].to_vec(),
    };
    if let Some(prov) = fragment_prov(&rhs, env, summaries) {
        for name in syn::body::bound_names(pat) {
            env.bind_node(name.name, prov);
        }
    }
}

/// Handles `lhs = rhs` fragments: rebinding simple names, recording field
/// stores.
fn handle_assignment(
    tokens: &TokenStream,
    line: usize,
    env: &mut Env,
    summaries: &Summaries,
    trace: &mut Vec<Action>,
) {
    let toks = &tokens.tokens;
    // First top-level `=` that is plain assignment (not ==, <=, +=, …).
    let mut depth = 0i32;
    let mut eq = None;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('=') {
            let prev_compound = i > 0
                && ['=', '!', '<', '>', '+', '-', '*', '/', '%', '&', '|', '^']
                    .iter()
                    .any(|c| toks[i - 1].is_punct(*c));
            let next_eq = toks.get(i + 1).is_some_and(|n| n.is_punct('='));
            if !prev_compound && !next_eq {
                eq = Some(i);
                break;
            }
        }
    }
    let Some(eq) = eq else { return };
    // Left side must be a pure dotted chain.
    let mut chain = Vec::new();
    let mut expect_ident = true;
    for t in &toks[..eq] {
        if expect_ident {
            if t.kind != TokenKind::Ident {
                return;
            }
            chain.push(t.text.clone());
            expect_ident = false;
        } else {
            if !t.is_punct('.') {
                return;
            }
            expect_ident = true;
        }
    }
    if chain.is_empty() || expect_ident {
        return;
    }
    let rhs = TokenStream {
        tokens: toks[eq + 1..].to_vec(),
    };
    let prov = fragment_prov(&rhs, env, summaries);
    let key = Env::canon(&chain);
    match prov {
        Some(p) => env.bind_node(key.clone(), p),
        None => {
            env.nodes.remove(&key);
        }
    }
    if chain.len() > 1 {
        trace.push(Action::StoreField {
            target: key,
            prov,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fn_of(src: &str) -> ItemFn {
        let file = syn::parse_file(src).expect("parses");
        let mut found = None;
        crate::for_each_fn(&file.items, &mut |f| {
            if found.is_none() {
                found = Some(f.clone());
            }
        });
        found.expect("one fn")
    }

    #[test]
    fn params_classify_by_type_text() {
        let f = fn_of(
            "fn f(mgr: &mut BddManager, ids: &[NodeId], n: usize, \
             other: &BddManager) -> NodeId { n }\n",
        );
        let p = params_of(&f);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].kind, ParamKind::Manager);
        assert_eq!(p[1].kind, ParamKind::Node);
        assert_eq!(p[2].kind, ParamKind::Other);
        assert_eq!(p[3].kind, ParamKind::Manager);
        assert!(returns_node(&f));
    }

    #[test]
    fn generics_do_not_confuse_the_param_scan() {
        let f = fn_of("fn g<F: Fn(u32) -> u32>(cb: F, map: HashMap<u32, NodeId>) {}\n");
        let p = params_of(&f);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].name, "cb");
        assert_eq!(p[1].kind, ParamKind::Node);
    }

    #[test]
    fn trace_resolves_cross_manager_flow() {
        let f = fn_of(
            "fn bad() {\n\
             \x20   let mut m1 = BddManager::new(4);\n\
             \x20   let mut m2 = BddManager::new(4);\n\
             \x20   let f = m1.literal(0, true);\n\
             \x20   let g = m2.and(f, f);\n\
             }\n",
        );
        let trace = trace_fn(&f, false, &Summaries::default());
        let cross = trace.iter().any(|a| match a {
            Action::Call {
                event,
                recv_manager: Some(r),
                arg_prov,
                ..
            } => event.name == "and" && arg_prov.iter().flatten().any(|p| p != r),
            _ => false,
        });
        assert!(cross, "m2.and(f_from_m1, …) must surface as cross-manager");
    }

    #[test]
    fn owner_fields_share_the_ambient_identity() {
        let f = fn_of(
            "impl Cf {\n\
             \x20   fn ok(&mut self, f: NodeId) {\n\
             \x20       let g = self.mgr.not(f);\n\
             \x20       self.manager_mut().ite(f, g, g);\n\
             \x20   }\n\
             }\n",
        );
        let trace = trace_fn(&f, false, &Summaries::default());
        for a in &trace {
            if let Action::Call {
                recv_manager: Some(r),
                arg_prov,
                ..
            } = a
            {
                for p in arg_prov.iter().flatten() {
                    assert_eq!(p, r, "owner-field ops stay same-identity");
                }
            }
        }
    }

    #[test]
    fn conc_summaries_resolve_lock_helpers_and_blocking() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            syn::parse_file(
                "fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {\n\
                 \x20   mutex.lock().unwrap_or_else(|e| e.into_inner())\n\
                 }\n\
                 fn lock_state(shared: &Shared) -> MutexGuard<'_, PoolState> {\n\
                 \x20   shared.state.lock().unwrap()\n\
                 }\n\
                 fn drain(shared: &Shared) {\n\
                 \x20   let g = lock_state(shared);\n\
                 \x20   std::thread::sleep(ms(1));\n\
                 }\n\
                 fn outer(shared: &Shared) { drain(shared); }\n",
            )
            .expect("parses"),
        )];
        let s = ConcSummaries::build(&files);
        let ev = |src: &str| {
            let toks = syn::tokenize(src).expect("lexes");
            call_events(&toks).remove(0)
        };
        let lock = s.of_call(&ev("lock(&store.cache)")).expect("lock helper");
        assert_eq!(lock.returns_guard, Some(Acq::Param(0)));
        let resolved = resolve_acq(
            lock.returns_guard.as_ref().expect("guard"),
            &ev("lock(&store.cache)"),
            &[],
        );
        assert_eq!(resolved, Some(Acq::Fixed("cache".to_string())));
        let lock_state = s.of_call(&ev("lock_state(&self.shared)")).expect("helper");
        assert_eq!(
            lock_state.returns_guard,
            Some(Acq::Fixed("state".to_string()))
        );
        let outer = s.of_call(&ev("outer(&shared)")).expect("outer");
        assert!(
            outer
                .blocking
                .as_deref()
                .is_some_and(|b| b.contains("sleep")),
            "blocking closes transitively: {:?}",
            outer.blocking
        );
        assert!(
            outer.acquires.contains(&Acq::Fixed("state".to_string())),
            "acquires close transitively: {:?}",
            outer.acquires
        );
    }

    #[test]
    fn condvar_wait_is_not_blocking_but_child_wait_is() {
        let toks = syn::tokenize("cv.wait(guard)").expect("lexes");
        assert!(blocking_call(&call_events(&toks)[0]).is_none());
        let toks = syn::tokenize("child.wait()").expect("lexes");
        assert!(blocking_call(&call_events(&toks)[0]).is_some());
        let toks = syn::tokenize("rwlock.read()").expect("lexes");
        assert!(blocking_call(&call_events(&toks)[0]).is_none());
        let toks = syn::tokenize("file.read(&mut buf)").expect("lexes");
        assert!(blocking_call(&call_events(&toks)[0]).is_some());
    }

    #[test]
    fn summaries_close_polls_transitively() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            syn::parse_file(
                "fn leaf(mgr: &mut BddManager) { mgr.charge(); }\n\
                 fn middle(mgr: &mut BddManager) { leaf(mgr); }\n\
                 fn outer(mgr: &mut BddManager) { middle(mgr); }\n\
                 fn cold(mgr: &mut BddManager) { mgr.node_count(); }\n",
            )
            .expect("parses"),
        )];
        let s = Summaries::build(&files);
        assert!(s.polls("leaf"));
        assert!(s.polls("outer"), "polls closes over the call graph");
        assert!(!s.polls("cold"));
    }
}
