//! XL104 — panic-surface: raw indexing/slicing and `*_unchecked` calls
//! on governed paths (which promise to degrade gracefully, not panic).

use std::collections::HashMap;

use syn::{File, TokenKind};

use crate::passes::{for_each_fn_scoped, in_governed_scope};
use crate::{is_waived, Finding, XL104_PANIC_SURFACE};

/// Identifiers that may legally precede `[` without forming an index
/// expression.
const NON_INDEX_PREFIX: &[&str] = &["let", "mut", "ref", "in", "box", "return", "break"];

pub(crate) fn run(
    rel: &str,
    file: &File,
    allow: &HashMap<usize, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    for_each_fn_scoped(&file.items, &mut |func, _| {
        let fn_name = &func.sig.ident.name;
        if !in_governed_scope(rel, fn_name) {
            return;
        }
        // A waiver on the `fn` signature line covers the whole body —
        // XL104 findings cluster (decode loops index byte-by-byte), and
        // one justified comment beats a dozen repeated ones.
        if is_waived(allow, func.sig.ident.line, XL104_PANIC_SURFACE) {
            return;
        }
        let Some(body) = &func.block else { return };
        let toks = &body.tokens;
        for (i, t) in toks.iter().enumerate() {
            // Raw index/slice: `expr[…]` — an opening bracket directly
            // after a value (identifier or closing delimiter).
            if t.is_punct('[') && i > 0 {
                let prev = &toks[i - 1];
                let after_value = (prev.kind == TokenKind::Ident
                    && !NON_INDEX_PREFIX.contains(&prev.text.as_str()))
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if after_value && !is_waived(allow, t.line, XL104_PANIC_SURFACE) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: t.line,
                        id: XL104_PANIC_SURFACE,
                        message: format!(
                            "raw index/slice in governed `{fn_name}` can panic; use \
                             `.get(…)` and surface the failure, or waive with a \
                             justification"
                        ),
                    });
                }
            }
            // Unchecked arithmetic/access.
            if t.kind == TokenKind::Ident
                && (t.text.starts_with("unchecked_") || t.text.contains("_unchecked"))
                && !is_waived(allow, t.line, XL104_PANIC_SURFACE)
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    id: XL104_PANIC_SURFACE,
                    message: format!(
                        "`{}` in governed `{fn_name}` bypasses checks on a path that \
                         promises graceful degradation",
                        t.text
                    ),
                });
            }
        }
    });
}
