//! XL105 — concurrency-readiness: interior mutability and other
//! non-`Send`/`Sync` state in the modules the ROADMAP schedules for
//! sharding must be flagged before the parallel rewrite starts.

use std::collections::HashMap;

use syn::{TokenKind, TokenStream};

use crate::passes::SHARDING_FILES;
use crate::{is_waived, Finding, XL105_CONCURRENCY};

/// Types that block `Send`/`Sync` or hide mutation from a future
/// sharding split.
const INTERIOR_MUTABILITY: &[&str] = &["Cell", "RefCell", "UnsafeCell", "Rc", "OnceCell"];

pub(crate) fn run(
    rel: &str,
    tokens: &TokenStream,
    allow: &HashMap<usize, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    if !SHARDING_FILES.contains(&rel) {
        return;
    }
    let toks = &tokens.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = if INTERIOR_MUTABILITY.contains(&t.text.as_str()) {
            Some(format!(
                "`{}` in a module scheduled for sharding; replace with \
                 exclusive ownership or a `Sync` primitive before the \
                 parallel rewrite",
                t.text
            ))
        } else if t.text == "static" && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            Some(
                "`static mut` in a module scheduled for sharding; use an \
                 atomic or pass state explicitly"
                    .to_string(),
            )
        } else if t.text == "thread_local" {
            Some(
                "`thread_local!` state in a module scheduled for sharding \
                 will silently diverge across worker threads"
                    .to_string(),
            )
        } else {
            None
        };
        if let Some(message) = flagged {
            if !is_waived(allow, t.line, XL105_CONCURRENCY) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    id: XL105_CONCURRENCY,
                    message,
                });
            }
        }
    }
}
