//! XL202 — blocking under a guard: file/socket I/O, `JoinHandle::join`,
//! channel receives, `sleep`, and governed `reduce_*`/`synthesize_*`
//! calls (resolved through call summaries) must not run while a lock
//! guard is live. `Condvar::wait` is exempt — it is the one legal way
//! to block under a guard, and XL203 audits its discipline separately.

use std::collections::HashMap;

use crate::dataflow::ConcSummaries;
use crate::guards;
use crate::passes::for_each_fn_scoped;
use crate::{is_waived, Finding, XL202_BLOCKING_UNDER_GUARD};

pub(crate) fn run(
    rel: &str,
    file: &syn::File,
    allow: &HashMap<usize, Vec<String>>,
    summaries: &ConcSummaries,
    findings: &mut Vec<Finding>,
) {
    for_each_fn_scoped(&file.items, &mut |func, _| {
        let conc = guards::analyze_fn(func, summaries);
        for site in &conc.blocking {
            if is_waived(allow, site.line, XL202_BLOCKING_UNDER_GUARD) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_string(),
                line: site.line,
                id: XL202_BLOCKING_UNDER_GUARD,
                message: format!(
                    "blocking operation {} in `{}` while the guard on `{}` (taken at line \
                     {}) is live; every other thread touching `{}` stalls for the full \
                     duration — release the guard first (`Condvar::wait` is the only \
                     legal block under a guard)",
                    site.what, conc.fn_name, site.guard.id, site.guard.line, site.guard.id
                ),
            });
        }
    });
}
