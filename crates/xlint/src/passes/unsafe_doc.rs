//! XL106 — undocumented `unsafe`: every `unsafe` block/fn/impl must be
//! justified by a `// SAFETY:` comment on or within three lines above
//! the `unsafe` keyword.

use std::collections::HashMap;

use syn::TokenStream;

use crate::{is_waived, Finding, XL106_UNDOC_UNSAFE};

pub(crate) fn run(
    rel: &str,
    tokens: &TokenStream,
    source: &str,
    allow: &HashMap<usize, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = source.lines().collect();
    for t in tokens.idents() {
        if t.text != "unsafe" {
            continue;
        }
        let lo = t.line.saturating_sub(4); // the keyword line and 3 above
        let documented = (lo..t.line)
            .filter_map(|i| lines.get(i))
            .any(|l| l.contains("SAFETY:"));
        if documented || is_waived(allow, t.line, XL106_UNDOC_UNSAFE) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: t.line,
            id: XL106_UNDOC_UNSAFE,
            message: "`unsafe` without a `// SAFETY:` comment; state the invariant \
                      that makes this sound (or delete the unsafe)"
                .to_string(),
        });
    }
}
