//! XL205 — spawn-capture provenance: a thread-spawn closure that
//! captures a `NodeId` or a manager reference smuggles arena state
//! across a thread boundary. Node ids are only meaningful inside the
//! manager that allocated them, and a manager is not `Sync`; anything
//! crossing into a spawned closure must travel through a rooted
//! snapshot (marked `// xlint: rooted`, the same convention XL102
//! credits) or a summary-approved channel. Bindings created *inside*
//! the closure are the legal pattern (each worker builds its own nodes)
//! and are never flagged.

use std::collections::HashMap;

use syn::body::{call_events, closure_events, parse_block, stmt_idents, Stmt};
use syn::ItemFn;

use crate::dataflow::{params_of, produces_node, ParamKind, Summaries};
use crate::passes::for_each_fn_scoped;
use crate::{is_waived, Finding, XL205_SPAWN_CAPTURE};

pub(crate) fn run(
    rel: &str,
    file: &syn::File,
    source: &str,
    allow: &HashMap<usize, Vec<String>>,
    summaries: &Summaries,
    findings: &mut Vec<Finding>,
) {
    let rooted: Vec<usize> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("xlint: rooted"))
        .map(|(i, _)| i + 1)
        .collect();
    for_each_fn_scoped(&file.items, &mut |func, self_is_manager| {
        check_fn(
            rel,
            func,
            self_is_manager,
            summaries,
            allow,
            &rooted,
            findings,
        );
    });
}

fn check_fn(
    rel: &str,
    func: &ItemFn,
    self_is_manager: bool,
    summaries: &Summaries,
    allow: &HashMap<usize, Vec<String>>,
    rooted: &[usize],
    findings: &mut Vec<Finding>,
) {
    // Risky bindings in scope: name -> what it is.
    let mut risky: HashMap<String, &'static str> = HashMap::new();
    for p in params_of(func) {
        match p.kind {
            ParamKind::Node => {
                risky.insert(p.name, "a `NodeId` parameter");
            }
            ParamKind::Manager => {
                risky.insert(p.name, "a manager reference");
            }
            ParamKind::Other => {
                if p.name == "self" && self_is_manager {
                    risky.insert(p.name, "the manager (`self`)");
                }
            }
        }
    }
    let Some(body) = &func.block else { return };
    let fn_name = func.sig.ident.name.clone();
    let block = parse_block(body);
    walk(
        &block.stmts,
        rel,
        &fn_name,
        &mut risky,
        summaries,
        allow,
        rooted,
        findings,
    );
}

/// Walks statements in source order: a statement that spawns is checked
/// against the bindings visible *before* it (its own interior bindings
/// are the worker's private state); every other statement contributes
/// its node-producing `let` bindings and recurses.
#[allow(clippy::too_many_arguments)] // internal recursion plumbing
fn walk(
    stmts: &[Stmt],
    rel: &str,
    fn_name: &str,
    risky: &mut HashMap<String, &'static str>,
    summaries: &Summaries,
    allow: &HashMap<usize, Vec<String>>,
    rooted: &[usize],
    findings: &mut Vec<Finding>,
) {
    for stmt in stmts {
        if let Some(spawn_line) = spawn_line_of(stmt) {
            check_spawn(
                stmt, spawn_line, rel, fn_name, risky, allow, rooted, findings,
            );
            continue;
        }
        match stmt {
            Stmt::Let(l) => {
                let produces = l.pat.contains_ident("NodeId")
                    || l.init.as_ref().is_some_and(|init| {
                        call_events(&init.tokens)
                            .iter()
                            .any(|ev| produces_node(ev, summaries))
                    });
                if produces {
                    for name in &l.names {
                        risky.insert(name.name.clone(), "a `NodeId` binding");
                    }
                }
                if let Some(init) = &l.init {
                    walk(
                        &init.nested,
                        rel,
                        fn_name,
                        risky,
                        summaries,
                        allow,
                        rooted,
                        findings,
                    );
                }
                if let Some(else_block) = &l.else_block {
                    walk(
                        &else_block.stmts,
                        rel,
                        fn_name,
                        risky,
                        summaries,
                        allow,
                        rooted,
                        findings,
                    );
                }
            }
            Stmt::If(i) => {
                let mut blocks = vec![&i.then_branch];
                blocks.extend(i.else_branch.as_ref());
                for b in blocks {
                    walk(
                        &b.stmts, rel, fn_name, risky, summaries, allow, rooted, findings,
                    );
                }
            }
            Stmt::Match(m) => {
                for arm in &m.arms {
                    walk(
                        &arm.body.stmts,
                        rel,
                        fn_name,
                        risky,
                        summaries,
                        allow,
                        rooted,
                        findings,
                    );
                }
            }
            Stmt::Loop(l) => {
                walk(
                    &l.body.stmts,
                    rel,
                    fn_name,
                    risky,
                    summaries,
                    allow,
                    rooted,
                    findings,
                );
            }
            Stmt::Expr(e) => {
                walk(
                    &e.nested, rel, fn_name, risky, summaries, allow, rooted, findings,
                );
            }
            Stmt::Item(_) => {}
        }
    }
}

/// The line of the first `spawn`/`scope`-family call event anywhere in
/// the statement subtree, or `None`.
fn spawn_line_of(stmt: &Stmt) -> Option<usize> {
    let mut line = None;
    for_each_fragment(stmt, &mut |tokens| {
        if line.is_none() {
            line = call_events(tokens)
                .iter()
                .find(|ev| ev.name == "spawn")
                .map(|ev| ev.line);
        }
    });
    line
}

/// Checks one spawning statement: identifiers its subtree mentions,
/// minus every closure's own parameters, are captures; a capture naming
/// a risky binding is a finding.
#[allow(clippy::too_many_arguments)] // internal recursion plumbing
fn check_spawn(
    stmt: &Stmt,
    spawn_line: usize,
    rel: &str,
    fn_name: &str,
    risky: &HashMap<String, &'static str>,
    allow: &HashMap<usize, Vec<String>>,
    rooted: &[usize],
    findings: &mut Vec<Finding>,
) {
    if risky.is_empty() {
        return;
    }
    let mut mentioned = Vec::new();
    stmt_idents(stmt, &mut mentioned);
    let mut closure_params = Vec::new();
    for_each_fragment(stmt, &mut |tokens| {
        for closure in closure_events(tokens) {
            closure_params.extend(closure.params.into_iter().map(|p| p.name));
        }
    });
    let mut flagged = Vec::new();
    for ident in &mentioned {
        if closure_params.iter().any(|p| p == &ident.name) {
            continue;
        }
        let Some(&what) = risky.get(&ident.name) else {
            continue;
        };
        if flagged.contains(&ident.name) {
            continue;
        }
        flagged.push(ident.name.clone());
        if is_waived(allow, spawn_line, XL205_SPAWN_CAPTURE)
            || rooted.contains(&spawn_line)
            || rooted.contains(&spawn_line.saturating_sub(1))
            || rooted.contains(&ident.line)
        {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: spawn_line,
            id: XL205_SPAWN_CAPTURE,
            message: format!(
                "thread spawn in `{fn_name}` captures `{}` — {what}: node ids and \
                 managers must cross threads through rooted snapshots (mark the line \
                 `// xlint: rooted`) or a summary-approved channel, never by raw \
                 capture",
                ident.name
            ),
        });
    }
}

/// Applies `f` to every flat token fragment of a statement subtree.
fn for_each_fragment(stmt: &Stmt, f: &mut impl FnMut(&syn::TokenStream)) {
    match stmt {
        Stmt::Let(l) => {
            if let Some(init) = &l.init {
                f(&init.tokens);
                for s in &init.nested {
                    for_each_fragment(s, f);
                }
            }
            if let Some(else_block) = &l.else_block {
                for s in &else_block.stmts {
                    for_each_fragment(s, f);
                }
            }
        }
        Stmt::If(i) => {
            f(&i.cond.tokens);
            for s in &i.cond.nested {
                for_each_fragment(s, f);
            }
            for s in &i.then_branch.stmts {
                for_each_fragment(s, f);
            }
            if let Some(e) = &i.else_branch {
                for s in &e.stmts {
                    for_each_fragment(s, f);
                }
            }
        }
        Stmt::Match(m) => {
            f(&m.scrutinee.tokens);
            for s in &m.scrutinee.nested {
                for_each_fragment(s, f);
            }
            for arm in &m.arms {
                for s in &arm.body.stmts {
                    for_each_fragment(s, f);
                }
            }
        }
        Stmt::Loop(l) => {
            f(&l.header.tokens);
            for s in &l.header.nested {
                for_each_fragment(s, f);
            }
            for s in &l.body.stmts {
                for_each_fragment(s, f);
            }
        }
        Stmt::Expr(e) => {
            f(&e.tokens);
            for s in &e.nested {
                for_each_fragment(s, f);
            }
        }
        Stmt::Item(_) => {}
    }
}
