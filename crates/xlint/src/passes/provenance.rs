//! XL101 — NodeId provenance: a `NodeId` obtained from one manager
//! binding must not flow into a call on a different manager binding.

use std::collections::HashMap;

use syn::File;

use crate::dataflow::{trace_fn, Action, Summaries};
use crate::passes::for_each_fn_scoped;
use crate::{is_waived, Finding, XL101_PROVENANCE};

pub(crate) fn run(
    rel: &str,
    file: &File,
    allow: &HashMap<usize, Vec<String>>,
    summaries: &Summaries,
    findings: &mut Vec<Finding>,
) {
    for_each_fn_scoped(&file.items, &mut |func, self_is_manager| {
        let fn_name = &func.sig.ident.name;
        for action in trace_fn(func, self_is_manager, summaries) {
            let Action::Call {
                event,
                recv_manager,
                arg_prov,
                arg_manager,
            } = action
            else {
                continue;
            };
            if is_waived(allow, event.line, XL101_PROVENANCE) {
                continue;
            }
            // Method call on a manager: every node argument must come
            // from that same manager.
            if let Some(recv_id) = recv_manager {
                for (i, prov) in arg_prov.iter().enumerate() {
                    if let Some(p) = prov {
                        if *p != recv_id {
                            let arg = event.args[i].root().unwrap_or("<arg>").to_string();
                            let recv = event
                                .receiver
                                .as_deref()
                                .map(|c| c.join("."))
                                .unwrap_or_default();
                            findings.push(Finding {
                                file: rel.to_string(),
                                line: event.line,
                                id: XL101_PROVENANCE,
                                message: format!(
                                    "in `{fn_name}`, `{arg}` was produced by a different \
                                     manager than `{recv}`; NodeIds are only valid against \
                                     the manager that created them"
                                ),
                            });
                        }
                    }
                }
                continue;
            }
            // Free call with a known (manager, node) parameter shape:
            // the node arguments must belong to the manager argument.
            if event.is_method {
                continue;
            }
            let Some(summary) = summaries.get(&event.name) else {
                continue;
            };
            if summary.manager_params.is_empty() {
                continue;
            }
            for &ni in &summary.node_params {
                // A node parameter belongs to the nearest preceding
                // *immutable* manager parameter (the
                // `transfer(src, dst, node)` convention: nodes are read
                // from the `&` source), falling back to the nearest
                // preceding one of any mutability, then the first.
                let preceding = |mutable_too: bool| {
                    summary.manager_params.iter().copied().rfind(|&mi| {
                        mi < ni && (mutable_too || !summary.mut_manager_params.contains(&mi))
                    })
                };
                let mi = preceding(false)
                    .or_else(|| preceding(true))
                    .or_else(|| summary.manager_params.first().copied());
                let Some(target) = mi.and_then(|mi| arg_manager.get(mi).copied().flatten()) else {
                    continue;
                };
                if let Some(Some(p)) = arg_prov.get(ni) {
                    if *p != target {
                        let arg = event.args[ni].root().unwrap_or("<arg>").to_string();
                        findings.push(Finding {
                            file: rel.to_string(),
                            line: event.line,
                            id: XL101_PROVENANCE,
                            message: format!(
                                "in `{fn_name}`, `{arg}` is passed to `{callee}` alongside \
                                 a manager that did not create it",
                                callee = event.name
                            ),
                        });
                    }
                }
            }
        }
    });
}
