//! XL201 — lock-order inversion: a cycle in the whole-program
//! lock-acquisition graph.
//!
//! Every acquisition that runs while another guard is live contributes
//! an edge `held → acquired`, keyed by lock identity (field/static
//! name, see [`crate::dataflow::Acq`]) and carrying its witness — the
//! function and lines of both the held guard and the new acquisition.
//! A cycle in that graph is a deadlock schedule; the finding prints
//! *every* edge of the cycle with its witness path, so both sides of a
//! two-lock inversion are visible in one line. A self-edge (acquiring a
//! lock already held) is the one-node cycle: a guaranteed self-deadlock
//! with `std::sync::Mutex`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::dataflow::ConcSummaries;
use crate::guards::{self, LockId};
use crate::passes::for_each_fn_scoped;
use crate::{is_waived, Finding, XL201_LOCK_ORDER};

/// Where one lock-order edge was observed.
struct Witness {
    file: String,
    func: String,
    held_line: usize,
    acq_line: usize,
}

pub(crate) fn run(
    parsed: &[(String, syn::File)],
    allows: &HashMap<String, HashMap<usize, Vec<String>>>,
    summaries: &ConcSummaries,
    findings: &mut Vec<Finding>,
) {
    let no_allow = HashMap::new();
    let mut edges: BTreeMap<(LockId, LockId), Witness> = BTreeMap::new();
    for (rel, file) in parsed {
        let allow = allows.get(rel).unwrap_or(&no_allow);
        for_each_fn_scoped(&file.items, &mut |func, _| {
            let conc = guards::analyze_fn(func, summaries);
            for site in &conc.acquisitions {
                for held in &site.held {
                    if held.id == site.id {
                        // Re-entrant acquisition: a one-node cycle.
                        if !is_waived(allow, site.line, XL201_LOCK_ORDER) {
                            findings.push(Finding {
                                file: rel.clone(),
                                line: site.line,
                                id: XL201_LOCK_ORDER,
                                message: format!(
                                    "re-entrant acquisition of lock `{}` in `{}`: the guard \
                                     taken at line {} is still live (self-deadlock with \
                                     `std::sync::Mutex`)",
                                    site.id, conc.fn_name, held.line
                                ),
                            });
                        }
                        continue;
                    }
                    edges
                        .entry((held.id.clone(), site.id.clone()))
                        .or_insert_with(|| Witness {
                            file: rel.clone(),
                            func: conc.fn_name.clone(),
                            held_line: held.line,
                            acq_line: site.line,
                        });
                }
            }
        });
    }
    // Cycle detection over the edge graph; every distinct cycle is
    // reported once, anchored at its first edge's acquisition site.
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut reported: BTreeSet<Vec<LockId>> = BTreeSet::new();
    for start in adj.keys().copied() {
        let mut path: Vec<&LockId> = vec![start];
        find_cycles(
            start,
            &adj,
            &mut path,
            &mut reported,
            &edges,
            allows,
            findings,
        );
    }
}

/// Depth-first search for cycles through `path[0]`; cycles are
/// canonicalized (rotated to their smallest element) so each is
/// reported exactly once across start nodes.
fn find_cycles<'a>(
    node: &'a LockId,
    adj: &BTreeMap<&'a LockId, Vec<&'a LockId>>,
    path: &mut Vec<&'a LockId>,
    reported: &mut BTreeSet<Vec<LockId>>,
    edges: &BTreeMap<(LockId, LockId), Witness>,
    allows: &HashMap<String, HashMap<usize, Vec<String>>>,
    findings: &mut Vec<Finding>,
) {
    // Lock graphs are tiny (a handful of mutexes); plain DFS with a
    // path check is plenty.
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if let Some(pos) = path.iter().position(|n| *n == next) {
            if pos == 0 {
                report_cycle(path, reported, edges, allows, findings);
            }
            continue;
        }
        if path.len() >= 8 {
            continue; // defensive bound; real lock chains are short
        }
        path.push(next);
        find_cycles(next, adj, path, reported, edges, allows, findings);
        path.pop();
    }
}

fn report_cycle(
    path: &[&LockId],
    reported: &mut BTreeSet<Vec<LockId>>,
    edges: &BTreeMap<(LockId, LockId), Witness>,
    allows: &HashMap<String, HashMap<usize, Vec<String>>>,
    findings: &mut Vec<Finding>,
) {
    // Canonical form: rotate so the smallest lock id comes first.
    let min = path
        .iter()
        .enumerate()
        .min_by_key(|(_, id)| *id)
        .map_or(0, |(i, _)| i);
    let canon: Vec<LockId> = (0..path.len())
        .map(|i| path[(min + i) % path.len()].clone())
        .collect();
    if !reported.insert(canon.clone()) {
        return;
    }
    let cycle_text = canon
        .iter()
        .chain(canon.first())
        .map(|id| format!("`{id}`"))
        .collect::<Vec<_>>()
        .join(" -> ");
    let mut witnesses = Vec::new();
    let mut anchor: Option<(&str, usize)> = None;
    for i in 0..canon.len() {
        let a = &canon[i];
        let b = &canon[(i + 1) % canon.len()];
        let Some(w) = edges.get(&(a.clone(), b.clone())) else {
            continue;
        };
        anchor.get_or_insert((w.file.as_str(), w.acq_line));
        witnesses.push(format!(
            "witness `{a}` -> `{b}`: `{}` ({}:{}) acquires `{b}` while holding `{a}` \
             (taken at line {})",
            w.func, w.file, w.acq_line, w.held_line
        ));
    }
    let Some((file, line)) = anchor else { return };
    let no_allow = HashMap::new();
    let allow = allows.get(file).unwrap_or(&no_allow);
    if is_waived(allow, line, XL201_LOCK_ORDER) {
        return;
    }
    findings.push(Finding {
        file: file.to_string(),
        line,
        id: XL201_LOCK_ORDER,
        message: format!(
            "lock-order inversion {cycle_text}: two threads taking these locks in \
             opposite orders deadlock; {}",
            witnesses.join("; ")
        ),
    });
}
