//! XL204 — atomics ordering discipline, whole-program.
//!
//! A `Relaxed` store is invisible ordering-wise: another thread that
//! loads the value may see it before the writes that preceded it. On a
//! cross-thread path (a file in the sharding set, or any file that
//! spawns threads) a `Relaxed` store whose atomic is loaded in a
//! *different* function therefore needs either a Release store /
//! Acquire load pairing somewhere on the identity, or an explicit
//! `// xlint: relaxed-ok` waiver stating that the value carries no data
//! dependency (pure counters, monotonic flags). `fetch_*` read-modify-
//! write ops count as stores; an identity that is never loaded
//! elsewhere (unique-ID generators) is clean by construction.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use syn::TokenKind;

use crate::passes::{for_each_fn_scoped, SHARDING_FILES};
use crate::{is_waived, Finding, XL204_ATOMICS};

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation site.
struct Site {
    file: String,
    func: String,
    line: usize,
    is_store: bool,
    orderings: Vec<String>,
}

pub(crate) fn run(
    files: &[(String, String)],
    parsed: &[(String, syn::File)],
    allows: &HashMap<String, HashMap<usize, Vec<String>>>,
    findings: &mut Vec<Finding>,
) {
    // Cross-thread scope: the sharding set plus every file that spawns.
    let cross_thread: BTreeSet<&str> = files
        .iter()
        .filter(|(rel, src)| SHARDING_FILES.contains(&rel.as_str()) || src.contains("spawn"))
        .map(|(rel, _)| rel.as_str())
        .collect();
    let relaxed_ok: HashMap<&str, BTreeSet<usize>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), marker_lines(src)))
        .collect();

    // Collect every atomic site, grouped by identity (the field name
    // before the op — same-named fields of unrelated structs merge,
    // which can only add findings, never hide one).
    let mut sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for (rel, file) in parsed {
        for_each_fn_scoped(&file.items, &mut |func, _| {
            let Some(body) = &func.block else { return };
            let toks = &body.tokens;
            for i in 2..toks.len() {
                let t = &toks[i];
                if t.kind != TokenKind::Ident
                    || !ATOMIC_OPS.contains(&t.text.as_str())
                    || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    || !toks[i - 1].is_punct('.')
                    || toks[i - 2].kind != TokenKind::Ident
                {
                    continue;
                }
                // Idents inside the balanced argument parens that name a
                // memory ordering; none ⇒ not an atomic op after all
                // (`Vec::swap`, I/O `read`, …).
                let mut orderings = Vec::new();
                let mut depth = 0usize;
                for a in &toks[i + 1..] {
                    if a.is_punct('(') {
                        depth += 1;
                    } else if a.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.kind == TokenKind::Ident && ORDERINGS.contains(&a.text.as_str()) {
                        orderings.push(a.text.clone());
                    }
                }
                if orderings.is_empty() {
                    continue;
                }
                sites
                    .entry(toks[i - 2].text.clone())
                    .or_default()
                    .push(Site {
                        file: rel.clone(),
                        func: func.sig.ident.name.clone(),
                        line: t.line,
                        is_store: t.text != "load",
                        orderings,
                    });
            }
        });
    }

    let no_allow = HashMap::new();
    let released = |o: &[String]| {
        o.iter()
            .any(|s| matches!(s.as_str(), "Release" | "AcqRel" | "SeqCst"))
    };
    let acquired = |o: &[String]| {
        o.iter()
            .any(|s| matches!(s.as_str(), "Acquire" | "AcqRel" | "SeqCst"))
    };
    for (identity, sites) in &sites {
        let has_pair = sites.iter().any(|s| s.is_store && released(&s.orderings))
            && sites.iter().any(|s| !s.is_store && acquired(&s.orderings));
        for site in sites
            .iter()
            .filter(|s| s.is_store && s.orderings.iter().all(|o| o == "Relaxed"))
        {
            if has_pair || !cross_thread.contains(site.file.as_str()) {
                continue;
            }
            // Loaded in a different function (possibly another file)?
            let Some(load) = sites
                .iter()
                .find(|s| !s.is_store && (s.func != site.func || s.file != site.file))
            else {
                continue;
            };
            let allow = allows.get(&site.file).unwrap_or(&no_allow);
            if is_waived(allow, site.line, XL204_ATOMICS)
                || relaxed_ok
                    .get(site.file.as_str())
                    .is_some_and(|ls| ls.contains(&site.line) || ls.contains(&(site.line - 1)))
            {
                continue;
            }
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                id: XL204_ATOMICS,
                message: format!(
                    "`Relaxed` store to atomic `{identity}` in `{}` is observed \
                     cross-thread (`{}` loads it at {}:{}): writes before this store \
                     are not ordered with it — use a Release store + Acquire load \
                     pair, or mark the store `// xlint: relaxed-ok` if the flag \
                     carries no data dependency",
                    site.func, load.func, load.file, load.line
                ),
            });
        }
    }
}

/// 1-based lines carrying an `xlint: relaxed-ok` marker.
fn marker_lines(source: &str) -> BTreeSet<usize> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("xlint: relaxed-ok"))
        .map(|(i, _)| i + 1)
        .collect()
}
