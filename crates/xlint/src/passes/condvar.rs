//! XL203 — `Condvar` discipline, whole-program:
//!
//! * every `wait`/`wait_timeout` must sit inside a loop whose back-edge
//!   re-checks a predicate (a `while`/`for` header, or a conditional in
//!   a `loop` body) — a bare `if !ready { cv.wait(g); }` misses spurious
//!   wakeups and lost notifications;
//! * each condvar must pair with exactly one mutex across the whole
//!   program — waiting on one condvar with guards of two different
//!   mutexes is undefined-order territory (std panics at runtime; this
//!   pass catches it statically).

use std::collections::{BTreeMap, HashMap};

use crate::dataflow::ConcSummaries;
use crate::guards::{self, LockId};
use crate::passes::for_each_fn_scoped;
use crate::{is_waived, Finding, XL203_CONDVAR};

pub(crate) fn run(
    parsed: &[(String, syn::File)],
    allows: &HashMap<String, HashMap<usize, Vec<String>>>,
    summaries: &ConcSummaries,
    findings: &mut Vec<Finding>,
) {
    let no_allow = HashMap::new();
    // condvar identity -> mutex identity -> first wait site.
    let mut pairing: BTreeMap<LockId, BTreeMap<LockId, (String, usize)>> = BTreeMap::new();
    for (rel, file) in parsed {
        let allow = allows.get(rel).unwrap_or(&no_allow);
        for_each_fn_scoped(&file.items, &mut |func, _| {
            let conc = guards::analyze_fn(func, summaries);
            for wait in &conc.waits {
                if let Some(lock) = &wait.guard_lock {
                    pairing
                        .entry(wait.condvar.clone())
                        .or_default()
                        .entry(lock.clone())
                        .or_insert_with(|| (rel.clone(), wait.line));
                }
                if is_waived(allow, wait.line, XL203_CONDVAR) {
                    continue;
                }
                if !wait.in_loop {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: wait.line,
                        id: XL203_CONDVAR,
                        message: format!(
                            "`{}.wait(…)` in `{}` is not inside a predicate loop: a \
                             spurious wakeup or a notification that raced the wait \
                             proceeds on a false predicate — wrap it in `while !cond {{ \
                             … }}` (or a `loop` that re-checks before using the state)",
                            wait.condvar, conc.fn_name
                        ),
                    });
                } else if !wait.rechecked {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: wait.line,
                        id: XL203_CONDVAR,
                        message: format!(
                            "the loop around `{}.wait(…)` in `{}` never re-checks a \
                             predicate on its back-edge: every wakeup (including \
                             spurious ones) falls straight through — re-test the \
                             condition after the wait returns",
                            wait.condvar, conc.fn_name
                        ),
                    });
                }
            }
        });
    }
    for (condvar, mutexes) in &pairing {
        if mutexes.len() <= 1 {
            continue;
        }
        let (file, line) = mutexes.values().next().cloned().expect("non-empty");
        let allow = allows.get(&file).unwrap_or(&no_allow);
        if is_waived(allow, line, XL203_CONDVAR) {
            continue;
        }
        let list = mutexes
            .iter()
            .map(|(m, (f, l))| format!("`{m}` ({f}:{l})"))
            .collect::<Vec<_>>()
            .join(", ");
        findings.push(Finding {
            file,
            line,
            id: XL203_CONDVAR,
            message: format!(
                "condvar `{condvar}` waits with guards of {} different mutexes: {list}; \
                 a `Condvar` must pair with exactly one `Mutex` (std panics on the \
                 second mutex at runtime)",
                mutexes.len()
            ),
        });
    }
}
