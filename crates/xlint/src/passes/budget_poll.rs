//! XL103 — budget-poll: every loop on a governed path whose body does
//! manager work must poll `Budget`/`CancelToken` on every iteration
//! path.

use std::collections::HashMap;

use syn::File;

use crate::cfg::unpolled_loops;
use crate::dataflow::Summaries;
use crate::passes::{for_each_fn_scoped, in_governed_scope};
use crate::{is_waived, Finding, XL103_BUDGET_POLL};

pub(crate) fn run(
    rel: &str,
    file: &File,
    allow: &HashMap<usize, Vec<String>>,
    summaries: &Summaries,
    findings: &mut Vec<Finding>,
) {
    for_each_fn_scoped(&file.items, &mut |func, _self_is_manager| {
        let fn_name = &func.sig.ident.name;
        if !in_governed_scope(rel, fn_name) {
            return;
        }
        for l in unpolled_loops(func, summaries) {
            if !l.does_work || is_waived(allow, l.line, XL103_BUDGET_POLL) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_string(),
                line: l.line,
                id: XL103_BUDGET_POLL,
                message: format!(
                    "loop in governed `{fn_name}` has an iteration path that never \
                     polls Budget/CancelToken; charge the budget (or call a `try_*`/\
                     `*_governed` helper) on every path through the body"
                ),
            });
        }
    });
}
