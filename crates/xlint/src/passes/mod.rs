//! The XL1xx/XL2xx analysis passes (`bddcf-analyze`).
//!
//! Each pass takes one parsed file (or, for the whole-program XL2xx
//! graph passes, all of them) plus the workspace summaries and appends
//! findings. Shared scope predicates live here.

pub(crate) mod atomics;
pub(crate) mod blocking;
pub(crate) mod budget_poll;
pub(crate) mod concurrency;
pub(crate) mod condvar;
pub(crate) mod gc_escape;
pub(crate) mod lock_order;
pub(crate) mod panic_surface;
pub(crate) mod provenance;
pub(crate) mod spawn_capture;
pub(crate) mod unsafe_doc;

use syn::{Item, ItemFn};

use crate::{is_governed_fn_name, is_test_only, GOVERNED_FILES};

/// Modules the ROADMAP names for sharding/parallelisation (the XL105
/// concurrency-readiness scope): the manager's hot paths, the per-level
/// parallel reduction candidate, the benchmark batch executor, and the
/// serve daemon's worker pool and connection layer (already threaded —
/// these must stay on `Sync` primitives only). The VFS is in scope too:
/// one `FaultVfs` journal is shared by every worker thread of a
/// fault-injected daemon.
pub(crate) const SHARDING_FILES: &[&str] = &[
    "crates/bdd/src/manager.rs",
    "crates/bdd/src/table.rs",
    "crates/bdd/src/vfs.rs",
    "crates/core/src/alg33.rs",
    "crates/bench/src/pipeline.rs",
    "crates/serve/src/pool.rs",
    "crates/serve/src/server.rs",
];

/// True when `func` in file `rel` is on a governed path (the XL103/XL104
/// scope): every function of a governed file, degradation, checkpoint, or
/// VFS module (the storage-fault surface must stay panic-free), and every
/// `try_*`/`*_governed` function anywhere.
pub(crate) fn in_governed_scope(rel: &str, fn_name: &str) -> bool {
    GOVERNED_FILES.contains(&rel)
        || rel.contains("degrade")
        || rel.contains("checkpoint")
        || rel.ends_with("vfs.rs")
        || is_governed_fn_name(fn_name)
}

/// Walks every non-test function with its impl context (whether `self`
/// is a manager).
pub(crate) fn for_each_fn_scoped(items: &[Item], f: &mut impl FnMut(&ItemFn, bool)) {
    for item in items {
        match item {
            Item::Fn(func) if !is_test_only(&func.attrs) => f(func, false),
            Item::Impl(imp) if !is_test_only(&imp.attrs) => {
                let self_is_manager =
                    imp.self_ty.contains("BddManager") || imp.self_ty.contains("MtManager");
                for func in &imp.fns {
                    if !is_test_only(&func.attrs) {
                        f(func, self_is_manager);
                    }
                }
            }
            Item::Mod(m) if !is_test_only(&m.attrs) => {
                if let Some(content) = &m.content {
                    for_each_fn_scoped(content, f);
                }
            }
            _ => {}
        }
    }
}
