//! XL102 — GC-escape: a `NodeId` stored into a struct field or
//! collection that is live across a `gc()` call must be registered as a
//! root (passed to `gc`, or routed through a `roots`-building statement)
//! or carry an `// xlint: rooted` waiver.

use std::collections::{HashMap, HashSet};

use syn::File;

use crate::dataflow::{trace_fn, Action, Summaries};
use crate::passes::for_each_fn_scoped;
use crate::{is_waived, Finding, XL102_GC_ESCAPE};

/// Collection methods that retain their argument.
const STORE_METHODS: &[&str] = &[
    "push",
    "insert",
    "push_back",
    "push_front",
    "extend",
    "replace",
];

/// Lines carrying an `xlint: rooted` marker.
fn rooted_lines(source: &str) -> HashSet<usize> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("xlint: rooted"))
        .map(|(i, _)| i + 1)
        .collect()
}

struct Store {
    index: usize,
    line: usize,
    container: String,
    value: Option<String>,
}

pub(crate) fn run(
    rel: &str,
    file: &File,
    source: &str,
    allow: &HashMap<usize, Vec<String>>,
    summaries: &Summaries,
    findings: &mut Vec<Finding>,
) {
    let rooted = rooted_lines(source);
    let is_rooted =
        |line: usize| rooted.contains(&line) || (line > 1 && rooted.contains(&(line - 1)));
    for_each_fn_scoped(&file.items, &mut |func, self_is_manager| {
        let trace = trace_fn(func, self_is_manager, summaries);
        let mut stores: Vec<Store> = Vec::new();
        let mut flagged: HashSet<usize> = HashSet::new();
        for (index, action) in trace.iter().enumerate() {
            match action {
                Action::StoreField {
                    target,
                    prov: Some(_),
                    line,
                } => stores.push(Store {
                    index,
                    line: *line,
                    container: target.clone(),
                    value: None,
                }),
                Action::Call {
                    event,
                    recv_manager: None,
                    arg_prov,
                    ..
                } if STORE_METHODS.contains(&event.name.as_str()) => {
                    let Some(chain) = event.receiver.as_deref() else {
                        continue;
                    };
                    for (i, prov) in arg_prov.iter().enumerate() {
                        if prov.is_some() {
                            stores.push(Store {
                                index,
                                line: event.line,
                                container: chain.join("."),
                                value: event.args[i].root().map(str::to_string),
                            });
                        }
                    }
                }
                Action::Call {
                    event,
                    recv_manager: Some(_),
                    ..
                } if event.name == "gc" || event.name == "try_gc" => {
                    let gc_arg_roots: Vec<&str> =
                        event.args.iter().filter_map(|a| a.root()).collect();
                    for store in &stores {
                        if store.index >= index || flagged.contains(&store.index) {
                            continue;
                        }
                        let container_last = store
                            .container
                            .rsplit('.')
                            .next()
                            .unwrap_or(&store.container);
                        let names: Vec<&str> = std::iter::once(container_last)
                            .chain(store.value.as_deref())
                            .collect();
                        // Rooted via the gc call itself?
                        if names.iter().any(|n| gc_arg_roots.contains(n)) {
                            continue;
                        }
                        // Rooted via a `roots`-building statement between
                        // the store and the gc?
                        let routed = trace[store.index..index].iter().any(|a| {
                            matches!(a, Action::RootsMention { idents }
                                if names.iter().any(|n| idents.iter().any(|i| i == n)))
                        });
                        if routed
                            || is_rooted(store.line)
                            || is_waived(allow, store.line, XL102_GC_ESCAPE)
                        {
                            continue;
                        }
                        flagged.insert(store.index);
                        findings.push(Finding {
                            file: rel.to_string(),
                            line: store.line,
                            id: XL102_GC_ESCAPE,
                            message: format!(
                                "NodeId stored into `{}` is live across a later `gc()` \
                                 but never registered as a root; pass it to `gc`, route \
                                 it through `roots`, or mark the store `xlint: rooted`",
                                store.container
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    });
}
