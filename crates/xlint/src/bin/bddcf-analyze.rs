//! `bddcf-analyze`: runs the XL1xx dataflow lint series (NodeId
//! provenance, GC-escape, budget-poll, panic-surface, concurrency-
//! readiness, undocumented unsafe) and the XL2xx concurrency series
//! (lock-order graphs, blocking-under-guard, Condvar discipline,
//! atomics ordering, spawn-capture provenance) over the workspace and
//! prints machine-readable findings (`file:line: [ID] message`).
//!
//! Usage: `bddcf-analyze [workspace-root]` (default: the current
//! directory). Exits 0 when clean, 1 when any finding survives, 2 on
//! usage or I/O errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => ".".to_string(),
        [root] => root.clone(),
        _ => {
            eprintln!("usage: bddcf-analyze [workspace-root]");
            return ExitCode::from(2);
        }
    };
    if !Path::new(&root).is_dir() {
        eprintln!("analyze: `{root}` is not a directory");
        return ExitCode::from(2);
    }
    match bddcf_xlint::analyze::analyze_workspace(Path::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("analyze: workspace clean (XL101–XL106, XL201–XL205)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("analyze: cannot walk `{root}`: {e}");
            ExitCode::from(2)
        }
    }
}
