//! Workspace-specific source lints for the governed BDD paths
//! (`bddcf-xlint`).
//!
//! The resource governor (PR 2) splits every `BddManager` operation into
//! an infallible twin (`and`, panics when poisoned / ignores budgets) and
//! a budgeted one (`try_and`, returns `Error`). The governed call paths —
//! the reduction driver, checkpointing, cascade synthesis, and the
//! `try_*`/`*_governed` entry points of the core algorithms — must stay on
//! the budgeted side, and the two binary-format modules must keep their
//! magic constants private to their framing code. Those are cross-cutting
//! conventions no compiler lint knows about; this crate enforces them
//! statically, on the parsed source (via the vendored `syn` mini-parser).
//!
//! # Catalog
//!
//! - **XL001** — a governed function calls an infallible `BddManager` op
//!   (`.and(…)`, `.ite(…)`, …) that has a `try_*` twin.
//! - **XL002** — a snapshot/checkpoint magic or version constant is
//!   referenced outside its defining module.
//! - **XL003** — a `pub fn try_*` budgeted entry point of the manager
//!   neither gates on the poison/budget state (`poisoned`, `charge`) nor
//!   delegates to another budgeted `try_*`/`*_rec` helper.
//!
//! A finding on line `L` can be waived with `// xlint: allow(XLnnn)` on
//! line `L` or `L-1`. `#[cfg(test)]` subtrees are never linted.
//!
//! The XL1xx series — dataflow-level analyses over statement-structured
//! bodies (`bddcf-analyze`) — lives in [`analyze`]; see that module and
//! the catalog constants below.

#![forbid(unsafe_code)]

pub mod analyze;
pub(crate) mod cfg;
pub(crate) mod dataflow;
pub(crate) mod guards;
pub(crate) mod passes;

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use syn::{File, Item, ItemFn, TokenStream};

/// XL000: a workspace source file failed to parse (a lint-harness defect,
/// surfaced loudly rather than silently skipping the file).
pub const XL000_PARSE: &str = "XL000";
/// XL001: infallible `BddManager` op on a governed path.
pub const XL001_INFALLIBLE_OP: &str = "XL001";
/// XL002: format magic referenced outside its defining module.
pub const XL002_MAGIC_LEAK: &str = "XL002";
/// XL003: a budgeted entry point without a poison/budget gate.
pub const XL003_UNGATED_ENTRY: &str = "XL003";
/// XL101: a `NodeId` from one manager flows into a different manager.
pub const XL101_PROVENANCE: &str = "XL101";
/// XL102: a stored `NodeId` is live across a `gc()` without being rooted.
pub const XL102_GC_ESCAPE: &str = "XL102";
/// XL103: a governed loop has an iteration path that never polls the
/// budget/cancel state.
pub const XL103_BUDGET_POLL: &str = "XL103";
/// XL104: raw indexing/slicing or `*_unchecked` call on a governed path.
pub const XL104_PANIC_SURFACE: &str = "XL104";
/// XL105: interior mutability / non-`Send` state in a module the ROADMAP
/// names for sharding.
pub const XL105_CONCURRENCY: &str = "XL105";
/// XL106: an `unsafe` block/fn/impl without a `// SAFETY:` comment.
pub const XL106_UNDOC_UNSAFE: &str = "XL106";
/// XL201: a cycle (including a re-entrant self-loop) in the
/// whole-program lock-acquisition-order graph.
pub const XL201_LOCK_ORDER: &str = "XL201";
/// XL202: a blocking operation (I/O, `join`, channel `recv`, `sleep`, a
/// governed `reduce_*`/`synthesize_*` call) runs while a lock guard is
/// live; `Condvar::wait` is the one legal block under a guard.
pub const XL202_BLOCKING_UNDER_GUARD: &str = "XL202";
/// XL203: `Condvar` discipline — every `wait` must sit in a predicate
/// loop re-checked on the back-edge, and each condvar must pair with
/// exactly one mutex.
pub const XL203_CONDVAR: &str = "XL203";
/// XL204: a `Relaxed` atomic store whose value another function loads
/// on a cross-thread path, without a Release/Acquire pair (waive with
/// `// xlint: relaxed-ok` when the value carries no data dependency).
pub const XL204_ATOMICS: &str = "XL204";
/// XL205: a thread-spawn closure captures a `NodeId` or a manager
/// reference without going through a rooted snapshot (`// xlint:
/// rooted`).
pub const XL205_SPAWN_CAPTURE: &str = "XL205";

/// Files whose *every* function is a governed path.
pub(crate) const GOVERNED_FILES: &[&str] = &[
    "crates/core/src/driver.rs",
    "crates/core/src/checkpoint.rs",
    "crates/cascade/src/synth.rs",
];

/// Files where only the `try_*` / `*_governed` functions are governed
/// (they coexist with intentionally-infallible convenience wrappers).
pub(crate) const GOVERNED_FN_FILES: &[&str] = &[
    "crates/core/src/cf.rs",
    "crates/core/src/alg31.rs",
    "crates/core/src/alg33.rs",
    "crates/core/src/support.rs",
];

/// `BddManager` methods with a budgeted `try_*` twin; calling the bare
/// name on a governed path bypasses budgets and the poison gate.
pub(crate) const INFALLIBLE_OPS: &[&str] = &[
    "mk",
    "literal",
    "cube",
    "from_minterms",
    "ite",
    "not",
    "and",
    "or",
    "xor",
    "iff",
    "implies",
    "apply",
    "and_many",
    "or_many",
    "restrict",
    "restrict_cube",
    "compose",
    "exists",
    "exists_cube",
    "forall",
    "and_exists",
    "restrict_care",
];

/// Binary-format magic/version constants and the single file allowed to
/// reference each (the module that owns the framing).
const MAGIC_CONSTANTS: &[(&str, &str)] = &[
    ("SNAPSHOT_MAGIC", "crates/bdd/src/snapshot.rs"),
    ("SNAPSHOT_VERSION", "crates/bdd/src/snapshot.rs"),
    ("CHECKPOINT_MAGIC", "crates/core/src/checkpoint.rs"),
    ("CHECKPOINT_VERSION", "crates/core/src/checkpoint.rs"),
    ("CHECKPOINT_EXT", "crates/core/src/checkpoint.rs"),
];

/// The file holding the budgeted `BddManager` entry points XL003 audits.
const MANAGER_FILE: &str = "crates/bdd/src/manager.rs";

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Catalog id (`XL001`, …).
    pub id: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.id, self.message
        )
    }
}

/// Lines carrying `// xlint: allow(XLnnn, …)` waivers, by line number.
pub(crate) fn allow_map(source: &str) -> HashMap<usize, Vec<String>> {
    let mut map = HashMap::new();
    for (i, text) in source.lines().enumerate() {
        let Some(pos) = text.find("xlint: allow(") else {
            continue;
        };
        let rest = &text[pos + "xlint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let ids: Vec<String> = rest[..end]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        map.insert(i + 1, ids);
    }
    map
}

pub(crate) fn is_waived(allow: &HashMap<usize, Vec<String>>, line: usize, id: &str) -> bool {
    let hit = |l: usize| allow.get(&l).is_some_and(|ids| ids.iter().any(|i| i == id));
    hit(line) || (line > 1 && hit(line - 1))
}

pub(crate) fn is_test_only(attrs: &[syn::Attribute]) -> bool {
    attrs
        .iter()
        .any(|a| a.path() == "cfg" && a.text.contains("test"))
}

/// Walks every non-`#[cfg(test)]` function of `items`, depth first.
pub(crate) fn for_each_fn<'a>(items: &'a [Item], f: &mut impl FnMut(&'a ItemFn)) {
    for item in items {
        match item {
            Item::Fn(func) if !is_test_only(&func.attrs) => f(func),
            Item::Impl(imp) if !is_test_only(&imp.attrs) => {
                for func in &imp.fns {
                    if !is_test_only(&func.attrs) {
                        f(func);
                    }
                }
            }
            Item::Mod(m) if !is_test_only(&m.attrs) => {
                if let Some(content) = &m.content {
                    for_each_fn(content, f);
                }
            }
            _ => {}
        }
    }
}

pub(crate) fn is_governed_fn_name(name: &str) -> bool {
    name.starts_with("try_") || name.ends_with("_governed") || name.contains("_governed_")
}

/// XL001 over one file's governed functions.
fn lint_infallible_ops(
    rel: &str,
    file: &File,
    allow: &HashMap<usize, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let whole_file = GOVERNED_FILES.contains(&rel);
    let by_name = GOVERNED_FN_FILES.contains(&rel);
    if !whole_file && !by_name {
        return;
    }
    for_each_fn(&file.items, &mut |func| {
        let name = &func.sig.ident.name;
        if by_name && !is_governed_fn_name(name) {
            return;
        }
        let Some(body) = &func.block else { return };
        for call in body.method_calls() {
            if !INFALLIBLE_OPS.contains(&call.text.as_str()) {
                continue;
            }
            if is_waived(allow, call.line, XL001_INFALLIBLE_OP) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_string(),
                line: call.line,
                id: XL001_INFALLIBLE_OP,
                message: format!(
                    "governed path `{name}` calls infallible `.{op}(…)`; use \
                     `try_{op}` and surface the budget error",
                    op = call.text
                ),
            });
        }
    });
}

/// XL002 over one file's raw token stream (catches `use` re-exports too).
fn lint_magic_leaks(
    rel: &str,
    tokens: &TokenStream,
    allow: &HashMap<usize, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    for token in tokens.idents() {
        let Some(&(name, home)) = MAGIC_CONSTANTS.iter().find(|(name, _)| *name == token.text)
        else {
            continue;
        };
        if rel == home || is_waived(allow, token.line, XL002_MAGIC_LEAK) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: token.line,
            id: XL002_MAGIC_LEAK,
            message: format!(
                "format constant `{name}` referenced outside its defining \
                 module `{home}`; route through that module's typed API"
            ),
        });
    }
}

/// XL003 over the manager's budgeted entry points.
///
/// A function is *gated* when its body touches the poison/budget state
/// (`poisoned`, `charge`) directly, references another gated function of
/// the same file (computed to a fixpoint, so `try_from_minterms →
/// build_sorted_minterms → charge` counts), or calls some `try_*` name.
/// Every `pub fn try_*` returning the budget `Error` must be gated;
/// validation-only entries returning other error types are exempt.
fn lint_ungated_entries(
    rel: &str,
    file: &File,
    allow: &HashMap<usize, Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    if rel != MANAGER_FILE {
        return;
    }
    let mut fns: Vec<&ItemFn> = Vec::new();
    for_each_fn(&file.items, &mut |func| fns.push(func));

    let mut gated: std::collections::HashSet<&str> = fns
        .iter()
        .filter(|f| {
            f.block.as_ref().is_some_and(|b| {
                b.idents()
                    .any(|t| t.text == "poisoned" || t.text == "charge")
            })
        })
        .map(|f| f.sig.ident.name.as_str())
        .collect();
    loop {
        let before = gated.len();
        for func in &fns {
            let name = func.sig.ident.name.as_str();
            if gated.contains(name) {
                continue;
            }
            let delegates = func.block.as_ref().is_some_and(|b| {
                b.idents()
                    .any(|t| t.text != name && gated.contains(t.text.as_str()))
            });
            if delegates {
                gated.insert(name);
            }
        }
        if gated.len() == before {
            break;
        }
    }

    for func in &fns {
        let name = &func.sig.ident.name;
        if !func.vis.is_pub()
            || !name.starts_with("try_")
            || !func.sig.tokens.contains_ident("Error")
            || func.block.is_none()
        {
            continue;
        }
        let conventionally_gated = func.block.as_ref().is_some_and(|b| {
            b.idents()
                .any(|t| t.text.starts_with("try_") && &t.text != name)
        });
        if gated.contains(name.as_str())
            || conventionally_gated
            || is_waived(allow, func.sig.ident.line, XL003_UNGATED_ENTRY)
        {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: func.sig.ident.line,
            id: XL003_UNGATED_ENTRY,
            message: format!(
                "budgeted entry point `{name}` neither checks `poisoned`/\
                 `charge` nor delegates to a budgeted helper"
            ),
        });
    }
}

/// Lints one source file as if it lived at workspace-relative path `rel`.
/// A parse failure yields a single [`XL000_PARSE`] finding.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let allow = allow_map(source);
    let mut findings = Vec::new();
    let tokens = match syn::tokenize(source) {
        Ok(t) => t,
        Err(e) => {
            return vec![Finding {
                file: rel.to_string(),
                line: e.line,
                id: XL000_PARSE,
                message: format!("cannot lex: {}", e.message),
            }]
        }
    };
    lint_magic_leaks(rel, &tokens, &allow, &mut findings);
    match syn::parse_file(source) {
        Ok(file) => {
            lint_infallible_ops(rel, &file, &allow, &mut findings);
            lint_ungated_entries(rel, &file, &allow, &mut findings);
        }
        Err(e) => findings.push(Finding {
            file: rel.to_string(),
            line: e.line,
            id: XL000_PARSE,
            message: format!("cannot parse: {}", e.message),
        }),
    }
    findings.sort_by(|a, b| (a.line, a.id).cmp(&(b.line, b.id)));
    findings
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `<root>/src` and `<root>/crates/*/src`
/// (the lint crate itself excluded — its fixtures would trip the rules).
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xlint"))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.id).collect()
    }

    #[test]
    fn xl001_fires_on_an_infallible_op_in_a_governed_file() {
        let src = "fn step(mgr: &mut BddManager, a: NodeId, b: NodeId) -> NodeId {\n\
                   \x20   mgr.and(a, b)\n}\n";
        let findings = lint_source("crates/core/src/driver.rs", src);
        assert_eq!(ids(&findings), [XL001_INFALLIBLE_OP]);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("try_and"));
    }

    #[test]
    fn xl001_respects_fn_granularity_in_mixed_files() {
        let src = "impl Cf {\n\
                   \x20   pub fn quick(&mut self) { self.mgr.or(a, b); }\n\
                   \x20   pub fn try_reduce(&mut self) { self.mgr.or(a, b); }\n\
                   \x20   pub fn reduce_alg33_governed(&mut self) { self.mgr.ite(f, g, h); }\n\
                   }\n";
        let findings = lint_source("crates/core/src/cf.rs", src);
        assert_eq!(ids(&findings), [XL001_INFALLIBLE_OP, XL001_INFALLIBLE_OP]);
        assert_eq!(findings[0].line, 3);
        assert_eq!(findings[1].line, 4);
    }

    #[test]
    fn xl001_skips_test_modules_and_ungoverned_files() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(mgr: &mut M) { mgr.and(a, b); }\n}\n";
        assert!(lint_source("crates/core/src/driver.rs", src).is_empty());
        let src = "fn free(mgr: &mut M) { mgr.and(a, b); }\n";
        assert!(lint_source("crates/decomp/src/lib.rs", src).is_empty());
    }

    #[test]
    fn xl001_allow_comment_waives_one_line() {
        let src = "fn step(mgr: &mut M) {\n\
                   \x20   // xlint: allow(XL001)\n\
                   \x20   mgr.and(a, b);\n\
                   \x20   mgr.or(a, b);\n}\n";
        let findings = lint_source("crates/cascade/src/synth.rs", src);
        assert_eq!(ids(&findings), [XL001_INFALLIBLE_OP]);
        assert_eq!(findings[0].line, 4, "only the unwaived call remains");
    }

    #[test]
    fn xl002_fires_outside_the_defining_module_only() {
        let src = "use crate::snapshot::SNAPSHOT_MAGIC;\n";
        let findings = lint_source("crates/bdd/src/manager.rs", src);
        assert_eq!(ids(&findings), [XL002_MAGIC_LEAK]);
        assert_eq!(findings[0].line, 1);
        assert!(lint_source("crates/bdd/src/snapshot.rs", src).is_empty());
        // Mentions in comments or strings do not count.
        let src = "// SNAPSHOT_MAGIC\nfn f() { let s = \"SNAPSHOT_MAGIC\"; }\n";
        assert!(lint_source("crates/io/src/verilog.rs", src).is_empty());
    }

    #[test]
    fn xl003_fires_on_an_ungated_budgeted_entry() {
        let src = "impl BddManager {\n\
                   \x20   pub fn try_shiny(&mut self, f: NodeId) -> Result<NodeId, Error> {\n\
                   \x20       Ok(f)\n\
                   \x20   }\n\
                   }\n";
        let findings = lint_source(MANAGER_FILE, src);
        assert_eq!(ids(&findings), [XL003_UNGATED_ENTRY]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn xl003_accepts_each_gate_form_and_other_error_types() {
        let gated = [
            "if self.poisoned { return Err(Error::Poisoned); } Ok(f)",
            "self.charge()?; Ok(f)",
            "self.try_mk(v, f, f)",
        ];
        for body in gated {
            let src = format!(
                "impl BddManager {{\n    pub fn try_x(&mut self, f: NodeId) \
                 -> Result<NodeId, Error> {{ {body} }}\n}}\n"
            );
            assert!(lint_source(MANAGER_FILE, &src).is_empty(), "{body}");
        }
        // Transitive gating: the entry delegates to a private helper that
        // charges (the `try_from_minterms` shape).
        let src = "impl BddManager {\n\
                   \x20   pub fn try_x(&mut self, f: NodeId) -> Result<NodeId, Error> {\n\
                   \x20       self.walk(f)\n\
                   \x20   }\n\
                   \x20   fn walk(&mut self, f: NodeId) -> Result<NodeId, Error> {\n\
                   \x20       self.charge()?;\n\
                   \x20       Ok(f)\n\
                   \x20   }\n\
                   }\n";
        assert!(lint_source(MANAGER_FILE, src).is_empty(), "transitive gate");
        // Validation-only entries returning another error type are exempt.
        let src = "impl BddManager {\n    pub fn try_set_order(&mut self) \
                   -> Result<(), OrderError> { Ok(()) }\n}\n";
        assert!(lint_source(MANAGER_FILE, src).is_empty());
        // Private helpers are exempt (the pub surface is the contract).
        let src = "impl BddManager {\n    fn try_quiet(&mut self) \
                   -> Result<NodeId, Error> { Ok(FALSE) }\n}\n";
        assert!(lint_source(MANAGER_FILE, src).is_empty());
    }

    #[test]
    fn unlexable_source_surfaces_as_xl000() {
        let findings = lint_source("crates/bdd/src/manager.rs", "fn f() { \"open\n");
        assert_eq!(ids(&findings), [XL000_PARSE]);
    }

    #[test]
    fn the_real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/xlint sits two levels below the root");
        let findings = lint_workspace(root).expect("workspace readable");
        let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
        assert!(findings.is_empty(), "{}", rendered.join("\n"));
    }
}
