//! Guard-scope tracking for the XL2xx concurrency passes.
//!
//! One walk over a statement-structured body maintains the stack of
//! live lock guards and collects everything XL201 (lock-order graph),
//! XL202 (blocking-under-guard), and XL203 (condvar discipline)
//! consume:
//!
//! * every **acquisition** (a direct `.lock()`/`.read()`/`.write()`, a
//!   summary-known lock helper, or a callee that transitively acquires)
//!   with a snapshot of the guards held at that point — the lock-order
//!   edges;
//! * every **blocking operation** that runs while a guard is live;
//! * every **`Condvar::wait`** site with its condvar identity, the lock
//!   its guard argument came from, and whether the enclosing loop
//!   re-checks a predicate on the back-edge.
//!
//! Guard lifetimes follow the lexical model the workspace actually
//! uses: a `let`-bound guard lives to the end of its block or an
//! explicit `drop(guard)`; a temporary guard (`lock_state(s).counters`)
//! lives to the end of its statement; an `if let`/`while let`/`match`
//! scrutinee temporary lives through the branches it feeds (the Rust
//! 2021 temporary-scope rule that makes `if let Some(r) =
//! lock(&cache).lookup(..)` hold the cache lock for the whole branch —
//! exactly the hazard XL202 exists to catch). A `guard =
//! cv.wait(guard)` reassignment keeps the binding live, matching the
//! guard round-trip through `Condvar::wait`.

use syn::body::{call_events, parse_block, ArgShape, Block, ExprStmt, LoopKind, Stmt};
use syn::ItemFn;

use crate::dataflow::{
    blocking_call, direct_lock_acquisition, params_of, resolve_acq, Acq, ConcSummaries,
};

/// A lock identity (see [`Acq`]): the last segment of its acquisition
/// chain.
pub(crate) type LockId = String;

/// One live guard at some program point.
#[derive(Clone, Debug)]
pub(crate) struct Held {
    /// The lock the guard protects.
    pub id: LockId,
    /// 1-based line of its acquisition.
    pub line: usize,
}

/// One lock acquisition, with the guards live when it ran.
#[derive(Debug)]
pub(crate) struct AcqSite {
    /// The lock being acquired.
    pub id: LockId,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Guards already held (lock-order edges `held → id`).
    pub held: Vec<Held>,
}

/// A blocking operation that ran while a guard was live.
#[derive(Debug)]
pub(crate) struct BlockSite {
    /// Description of the blocking call.
    pub what: String,
    /// 1-based line of the call.
    pub line: usize,
    /// The innermost guard live at the call.
    pub guard: Held,
}

/// One `Condvar::wait`/`wait_timeout` call site.
#[derive(Debug)]
pub(crate) struct WaitSite {
    /// Identity of the condvar (last receiver-chain segment).
    pub condvar: LockId,
    /// The lock whose guard is passed to `wait`, when resolvable.
    pub guard_lock: Option<LockId>,
    /// 1-based line of the call.
    pub line: usize,
    /// The wait sits inside some loop.
    pub in_loop: bool,
    /// The innermost enclosing loop re-checks a predicate on its
    /// back-edge (a `while`/`for` header, or a conditional in a `loop`
    /// body).
    pub rechecked: bool,
}

/// Everything one function contributes to the XL2xx passes.
#[derive(Debug, Default)]
pub(crate) struct FnConcurrency {
    /// The function's name.
    pub fn_name: String,
    /// Acquisitions, in source order.
    pub acquisitions: Vec<AcqSite>,
    /// Blocking-under-guard sites, in source order.
    pub blocking: Vec<BlockSite>,
    /// Condvar wait sites, in source order.
    pub waits: Vec<WaitSite>,
}

/// Walks one function under the workspace concurrency summaries.
pub(crate) fn analyze_fn(func: &ItemFn, summaries: &ConcSummaries) -> FnConcurrency {
    let params: Vec<String> = params_of(func).iter().map(|p| p.name.clone()).collect();
    let mut walker = Walker {
        summaries,
        params,
        guards: Vec::new(),
        loops: Vec::new(),
        out: FnConcurrency {
            fn_name: func.sig.ident.name.clone(),
            ..FnConcurrency::default()
        },
    };
    if let Some(body) = &func.block {
        walker.walk_block(&parse_block(body));
    }
    walker.out
}

/// One guard on the scope stack.
#[derive(Clone, Debug)]
struct GuardEntry {
    /// `let`-bound name; `None` for a statement temporary.
    name: Option<String>,
    id: LockId,
    line: usize,
    /// An explicit `drop(guard)` ended it early.
    released: bool,
}

/// What one flat fragment reported back for `let`-binding conversion.
#[derive(Default)]
struct FragmentResult {
    /// Index into the guard stack of the last acquisition, plus its
    /// event index.
    last_guard: Option<(usize, usize)>,
    /// The fragment's value *is* the guard (every event after the
    /// acquisition passes it through and nothing trails the last
    /// call), so a `let` binds the guard itself.
    bindable: bool,
}

const UNWRAP_OK: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or_else",
    "unwrap_or",
    "unwrap_or_default",
    "into_inner",
];

struct Walker<'a> {
    summaries: &'a ConcSummaries,
    params: Vec<String>,
    guards: Vec<GuardEntry>,
    /// Per enclosing loop: does it re-check a predicate on the
    /// back-edge?
    loops: Vec<bool>,
    out: FnConcurrency,
}

impl Walker<'_> {
    fn walk_block(&mut self, block: &Block) {
        let mark = self.guards.len();
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
        }
        self.guards.truncate(mark);
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Item(_) => {}
            Stmt::Let(l) => {
                let mark = self.guards.len();
                let mut kept = None;
                if let Some(init) = &l.init {
                    let res = self.fragment(init);
                    for nested in &init.nested {
                        self.walk_stmt(nested);
                    }
                    if res.bindable && l.names.len() == 1 {
                        if let Some((gi, _)) = res.last_guard {
                            kept = Some(self.guards[gi].clone());
                        }
                    }
                }
                if let Some(else_block) = &l.else_block {
                    self.walk_block(else_block);
                }
                // Initializer temporaries end with the statement; the
                // binding keeps the guard the `let` actually holds.
                self.guards.truncate(mark);
                if let (Some(mut g), [name]) = (kept, &l.names[..]) {
                    if !g.released {
                        g.name = Some(name.name.clone());
                        self.guards.push(g);
                    }
                }
            }
            Stmt::If(i) => {
                let mark = self.guards.len();
                self.fragment(&i.cond);
                for nested in &i.cond.nested {
                    self.walk_stmt(nested);
                }
                // Plain-`if` condition temporaries drop before the
                // branch; an `if let` scrutinee lives through both.
                if !starts_with_let(&i.cond) {
                    self.guards.truncate(mark);
                }
                self.walk_block(&i.then_branch);
                if let Some(else_branch) = &i.else_branch {
                    self.walk_block(else_branch);
                }
                self.guards.truncate(mark);
            }
            Stmt::Match(m) => {
                let mark = self.guards.len();
                self.fragment(&m.scrutinee);
                for nested in &m.scrutinee.nested {
                    self.walk_stmt(nested);
                }
                // A match scrutinee temporary lives through every arm.
                for arm in &m.arms {
                    self.walk_block(&arm.body);
                }
                self.guards.truncate(mark);
            }
            Stmt::Loop(l) => {
                let rechecked = match l.kind {
                    LoopKind::While | LoopKind::For => true,
                    LoopKind::Loop => block_has_branch(&l.body),
                };
                let mark = self.guards.len();
                self.fragment(&l.header);
                for nested in &l.header.nested {
                    self.walk_stmt(nested);
                }
                if !starts_with_let(&l.header) {
                    self.guards.truncate(mark);
                }
                self.loops.push(rechecked);
                self.walk_block(&l.body);
                self.loops.pop();
                self.guards.truncate(mark);
            }
            Stmt::Expr(e) => {
                let mark = self.guards.len();
                self.fragment(e);
                for nested in &e.nested {
                    self.walk_stmt(nested);
                }
                self.guards.truncate(mark);
            }
        }
    }

    /// Processes one flat fragment: records acquisition edges, blocking
    /// sites, wait sites; pushes temporary guard entries.
    fn fragment(&mut self, expr: &ExprStmt) -> FragmentResult {
        let events = call_events(&expr.tokens);
        let mut res = FragmentResult::default();
        for (idx, ev) in events.iter().enumerate() {
            // `drop(guard)` / `mem::drop(guard)` releases early.
            if !ev.is_method && ev.name == "drop" && ev.args.len() == 1 {
                if let Some(ArgShape::Path { segments, .. }) = ev.args.first() {
                    if let [name] = &segments[..] {
                        if let Some(g) = self
                            .guards
                            .iter_mut()
                            .rev()
                            .find(|g| g.name.as_deref() == Some(name.as_str()) && !g.released)
                        {
                            g.released = true;
                        }
                    }
                }
                continue;
            }
            // `Condvar::wait(guard)` — the one legal block under a
            // guard; the guard round-trips through the call.
            if ev.is_method
                && matches!(
                    ev.name.as_str(),
                    "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while"
                )
                && !ev.args.is_empty()
            {
                let condvar = ev
                    .receiver
                    .as_ref()
                    .and_then(|c| c.last())
                    .map(|s| s.strip_suffix("()").unwrap_or(s).to_string());
                let guard_lock = match ev.args.first() {
                    Some(ArgShape::Path { segments, .. }) => match &segments[..] {
                        [name] => self
                            .guards
                            .iter()
                            .rev()
                            .find(|g| g.name.as_deref() == Some(name.as_str()) && !g.released)
                            .map(|g| g.id.clone()),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(condvar) = condvar {
                    self.out.waits.push(WaitSite {
                        condvar,
                        guard_lock,
                        line: ev.line,
                        in_loop: !self.loops.is_empty(),
                        rechecked: self.loops.last().copied().unwrap_or(false),
                    });
                }
                continue;
            }
            // Direct std acquisition.
            if let Some(acq) = direct_lock_acquisition(ev, &self.params) {
                let gi = self.acquire(self.lock_id(&acq), ev.line);
                res.last_guard = Some((gi, idx));
                continue;
            }
            // Summary-known callee: lock helpers leave a live guard;
            // other acquiring callees contribute transient edges; a
            // blocking callee under a guard is a finding.
            if let Some(callee) = self.summaries.of_call(ev) {
                let callee = callee.clone();
                if let Some(rg) = &callee.returns_guard {
                    if let Some(resolved) = resolve_acq(rg, ev, &self.params) {
                        let gi = self.acquire(self.lock_id(&resolved), ev.line);
                        res.last_guard = Some((gi, idx));
                    }
                    // Lock helpers acquire nothing beyond the guard
                    // they return.
                    continue;
                }
                for acq in &callee.acquires {
                    if let Some(resolved) = resolve_acq(acq, ev, &self.params) {
                        let id = self.lock_id(&resolved);
                        let held = self.held();
                        self.out.acquisitions.push(AcqSite {
                            id,
                            line: ev.line,
                            held,
                        });
                    }
                }
                if let Some(b) = &callee.blocking {
                    if let Some(guard) = self.innermost() {
                        self.out.blocking.push(BlockSite {
                            what: format!("call to `{}`, which blocks: {b}", ev.name),
                            line: ev.line,
                            guard,
                        });
                    }
                }
                continue;
            }
            // Direct blocking operation.
            if let Some(what) = blocking_call(ev) {
                if let Some(guard) = self.innermost() {
                    self.out.blocking.push(BlockSite {
                        what,
                        line: ev.line,
                        guard,
                    });
                }
            }
        }
        // A `let` binds the guard only when every event after the
        // acquisition passes it through (`.unwrap()` etc.) and nothing
        // trails the final call (a `….unwrap().field` projection binds
        // data, not the guard) — otherwise the guard is a temporary
        // that dies with the statement.
        if let Some((_, ei)) = res.last_guard {
            res.bindable = events[ei + 1..]
                .iter()
                .all(|e| UNWRAP_OK.contains(&e.name.as_str()))
                && expr
                    .tokens
                    .tokens
                    .last()
                    .is_some_and(|t| t.is_punct(')') || t.is_punct('?'));
        }
        res
    }

    /// Records an acquisition (with held-set snapshot) and pushes a
    /// temporary guard entry; returns its stack index.
    fn acquire(&mut self, id: LockId, line: usize) -> usize {
        let held = self.held();
        self.out.acquisitions.push(AcqSite {
            id: id.clone(),
            line,
            held,
        });
        self.guards.push(GuardEntry {
            name: None,
            id,
            line,
            released: false,
        });
        self.guards.len() - 1
    }

    /// The lock identity of a resolved [`Acq`] in this function's
    /// scope: positional parameters keep their own names.
    fn lock_id(&self, acq: &Acq) -> LockId {
        match acq {
            Acq::Fixed(id) => id.clone(),
            Acq::Param(i) => self
                .params
                .get(*i)
                .cloned()
                .unwrap_or_else(|| format!("param{i}")),
        }
    }

    fn held(&self) -> Vec<Held> {
        self.guards
            .iter()
            .filter(|g| !g.released)
            .map(|g| Held {
                id: g.id.clone(),
                line: g.line,
            })
            .collect()
    }

    fn innermost(&self) -> Option<Held> {
        self.guards
            .iter()
            .rev()
            .find(|g| !g.released)
            .map(|g| Held {
                id: g.id.clone(),
                line: g.line,
            })
    }
}

/// True when the fragment is an `if let`/`while let` header (whose
/// scrutinee temporaries live through the branch).
fn starts_with_let(expr: &ExprStmt) -> bool {
    expr.tokens
        .tokens
        .first()
        .is_some_and(|t| t.is_ident("let"))
}

/// True when the block contains any conditional — the predicate
/// re-check a bare `loop` needs on its condvar back-edge.
fn block_has_branch(block: &Block) -> bool {
    block.stmts.iter().any(stmt_has_branch)
}

fn stmt_has_branch(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::If(_) | Stmt::Match(_) => true,
        Stmt::Loop(l) => {
            matches!(l.kind, LoopKind::While | LoopKind::For) || block_has_branch(&l.body)
        }
        Stmt::Let(l) => {
            l.else_block.is_some()
                || l.init
                    .as_ref()
                    .is_some_and(|i| i.nested.iter().any(stmt_has_branch))
        }
        Stmt::Expr(e) => e.nested.iter().any(stmt_has_branch),
        Stmt::Item(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::ConcSummaries;

    fn conc_of(src: &str, fn_name: &str) -> FnConcurrency {
        let file = syn::parse_file(src).expect("parses");
        let parsed = vec![("crates/x/src/lib.rs".to_string(), file.clone())];
        let summaries = ConcSummaries::build(&parsed);
        let mut found = None;
        crate::for_each_fn(&file.items, &mut |f| {
            if f.sig.ident.name == fn_name {
                found = Some(f.clone());
            }
        });
        analyze_fn(&found.expect("fn present"), &summaries)
    }

    #[test]
    fn let_guard_lives_to_drop_and_temp_dies_with_statement() {
        let conc = conc_of(
            "fn f(&self) {\n\
             \x20   let mut state = self.state.lock().unwrap();\n\
             \x20   state.n += 1;\n\
             \x20   drop(state);\n\
             \x20   std::thread::sleep(ms(1));\n\
             \x20   let n = self.other.lock().unwrap().n;\n\
             \x20   std::fs::read(path);\n\
             }\n",
            "f",
        );
        assert!(
            conc.blocking.is_empty(),
            "sleep after drop and fs::read after a temp guard are clean: {:?}",
            conc.blocking
        );
    }

    #[test]
    fn blocking_under_live_guard_is_reported() {
        let conc = conc_of(
            "fn f(&self) {\n\
             \x20   let g = self.state.lock().unwrap();\n\
             \x20   std::thread::sleep(ms(1));\n\
             }\n",
            "f",
        );
        assert_eq!(conc.blocking.len(), 1);
        assert_eq!(conc.blocking[0].guard.id, "state");
    }

    #[test]
    fn if_let_scrutinee_guard_spans_the_branch() {
        let conc = conc_of(
            "fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap() }\n\
             fn f(store: &Store) {\n\
             \x20   if let Some(r) = lock(&store.cache).get(k) {\n\
             \x20       std::fs::write(p, r);\n\
             \x20   }\n\
             \x20   if lock(&store.cache).is_empty() {\n\
             \x20       std::fs::write(p, b);\n\
             \x20   }\n\
             }\n",
            "f",
        );
        assert_eq!(
            conc.blocking.len(),
            1,
            "if-let holds the guard through its branch; plain if does not: {:?}",
            conc.blocking
        );
        assert_eq!(conc.blocking[0].guard.id, "cache");
    }

    #[test]
    fn nested_acquisition_records_the_order_edge() {
        let conc = conc_of(
            "fn f(&self) {\n\
             \x20   let a = self.state.lock().unwrap();\n\
             \x20   let b = self.handles.lock().unwrap();\n\
             }\n",
            "f",
        );
        let edge = conc
            .acquisitions
            .iter()
            .find(|s| s.id == "handles")
            .expect("second acquisition");
        assert_eq!(edge.held.len(), 1);
        assert_eq!(edge.held[0].id, "state");
    }

    #[test]
    fn condvar_wait_shapes_are_classified() {
        let conc = conc_of(
            "fn f(&self) {\n\
             \x20   let mut state = self.shared.state.lock().unwrap();\n\
             \x20   while state.busy {\n\
             \x20       state = self.shared.work.wait(state).unwrap();\n\
             \x20   }\n\
             \x20   if state.racy {\n\
             \x20       state = self.shared.idle.wait(state).unwrap();\n\
             \x20   }\n\
             }\n",
            "f",
        );
        assert_eq!(conc.waits.len(), 2);
        let w = &conc.waits[0];
        assert_eq!(w.condvar, "work");
        assert_eq!(w.guard_lock.as_deref(), Some("state"));
        assert!(w.in_loop && w.rechecked);
        assert!(!conc.waits[1].in_loop, "wait under a bare if is flagged");
        assert!(
            conc.blocking.is_empty(),
            "condvar wait is the one legal block: {:?}",
            conc.blocking
        );
    }

    #[test]
    fn loop_with_break_predicate_counts_as_rechecked() {
        let conc = conc_of(
            "fn f(shared: &Shared) {\n\
             \x20   let mut state = shared.state.lock().unwrap();\n\
             \x20   loop {\n\
             \x20       if state.ready { break; }\n\
             \x20       state = shared.work.wait(state).unwrap();\n\
             \x20   }\n\
             }\n",
            "f",
        );
        assert_eq!(conc.waits.len(), 1);
        assert!(conc.waits[0].in_loop && conc.waits[0].rechecked);
    }
}
