//! `bddcf-xlint`: runs the workspace source lints (XL001–XL003) and
//! prints machine-readable findings (`file:line: [ID] message`).
//!
//! Usage: `bddcf-xlint [workspace-root]` (default: the current
//! directory). Exits 1 when any finding survives, 2 on I/O errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => ".".to_string(),
        [root] => root.clone(),
        _ => {
            eprintln!("usage: bddcf-xlint [workspace-root]");
            return ExitCode::from(2);
        }
    };
    match bddcf_xlint::lint_workspace(Path::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("xlint: governed paths clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("xlint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xlint: cannot walk `{root}`: {e}");
            ExitCode::from(2)
        }
    }
}
