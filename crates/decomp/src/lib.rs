//! Functional decomposition: decomposition charts, column multiplicity,
//! and BDD_for_CF-based decomposition (§3.1, Theorem 3.1).
//!
//! A decomposition `f(X₁,X₂) = g(h(X₁), X₂)` is profitable when the column
//! multiplicity `µ` of the chart for the partition `(X₁,X₂)` satisfies
//! `⌈log₂ µ⌉ < |X₁|`. On a BDD the multiplicity is the width at the cut
//! between `X₁` and `X₂`; don't cares let compatible columns merge and the
//! width shrink — that is the whole point of the paper's Algorithms
//! 3.1/3.3.
//!
//! * [`chart`] — explicit ternary decomposition charts (Definition 3.6,
//!   Tables 2–3), column compatibility, and chart-level merging via
//!   Algorithm 3.2's clique cover.
//! * [`bdd_decomp`] — decomposition straight off a [`Cf`](bddcf_core::Cf):
//!   column extraction at a cut, rail counting (Theorem 3.1), and
//!   evaluation of the decomposed network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd_decomp;
pub mod chart;

pub use bdd_decomp::BddDecomposition;
pub use chart::DecompositionChart;
