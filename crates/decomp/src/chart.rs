//! Explicit decomposition charts for single-output incompletely specified
//! functions (Definition 3.6) and compatible-column merging (Example 3.4).

#![allow(clippy::needless_range_loop)] // row indices mirror the chart coordinates
use bddcf_core::cover::{CompatGraph, CoverHeuristic};
use bddcf_logic::{Ternary, TruthTable};

/// A decomposition chart: columns indexed by the bound-set (`X₁`)
/// assignment, rows by the free-set (`X₂`) assignment, entries ternary.
///
/// # Example
///
/// ```
/// use bddcf_decomp::DecompositionChart;
/// use bddcf_core::cover::CoverHeuristic;
///
/// let chart = DecompositionChart::paper_table2();
/// assert_eq!(chart.multiplicity(), 4); // Example 3.3
/// let (merged, _codes) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
/// assert_eq!(merged.multiplicity(), 2); // Example 3.4
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecompositionChart {
    bound: Vec<usize>,
    free: Vec<usize>,
    /// `cols[c][r]` = value at column `c`, row `r`.
    cols: Vec<Vec<Ternary>>,
}

impl DecompositionChart {
    /// Builds the chart of output `output` of `table` for the bound set
    /// `bound` (input indices); the free set is every other input, in
    /// increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is empty, covers all inputs, repeats an index, or
    /// is out of range.
    pub fn from_table(table: &TruthTable, output: usize, bound: &[usize]) -> Self {
        let n = table.num_inputs();
        assert!(!bound.is_empty(), "bound set must be non-empty");
        assert!(bound.len() < n, "free set must be non-empty");
        let mut seen = vec![false; n];
        for &b in bound {
            assert!(b < n, "bound input {b} out of range");
            assert!(
                !std::mem::replace(&mut seen[b], true),
                "duplicate bound input {b}"
            );
        }
        let free: Vec<usize> = (0..n).filter(|i| !seen[*i]).collect();
        let mut cols = vec![vec![Ternary::DontCare; 1 << free.len()]; 1 << bound.len()];
        for (c, col) in cols.iter_mut().enumerate() {
            for (r, entry) in col.iter_mut().enumerate() {
                let mut row_index = 0usize;
                for (k, &i) in bound.iter().enumerate() {
                    if c >> k & 1 == 1 {
                        row_index |= 1 << i;
                    }
                }
                for (k, &i) in free.iter().enumerate() {
                    if r >> k & 1 == 1 {
                        row_index |= 1 << i;
                    }
                }
                *entry = table.get(row_index, output);
            }
        }
        DecompositionChart {
            bound: bound.to_vec(),
            free,
            cols,
        }
    }

    /// Builds a chart directly from its columns (each column is the vector
    /// of values down the rows). For tests and worked examples.
    ///
    /// # Panics
    ///
    /// Panics unless there are `2^|X₁|` columns of equal power-of-two
    /// length.
    pub fn from_columns(columns: Vec<Vec<Ternary>>) -> Self {
        assert!(columns.len().is_power_of_two(), "need 2^|X1| columns");
        let rows = columns[0].len();
        assert!(rows.is_power_of_two(), "need 2^|X2| rows");
        assert!(columns.iter().all(|c| c.len() == rows), "ragged columns");
        let nb = columns.len().trailing_zeros() as usize;
        let nf = rows.trailing_zeros() as usize;
        DecompositionChart {
            bound: (0..nb).collect(),
            free: (nb..nb + nf).collect(),
            cols: columns,
        }
    }

    /// Bound-set input indices (column labels).
    pub fn bound(&self) -> &[usize] {
        &self.bound
    }

    /// Free-set input indices (row labels).
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Number of columns, `2^|X₁|`.
    pub fn num_columns(&self) -> usize {
        self.cols.len()
    }

    /// One column pattern.
    pub fn column(&self, c: usize) -> &[Ternary] {
        &self.cols[c]
    }

    /// The column multiplicity `µ`: number of *distinct* column patterns
    /// (Definition 3.6). Don't cares count as their own symbol here; use
    /// [`DecompositionChart::merge_compatible`] to exploit them.
    pub fn multiplicity(&self) -> usize {
        let mut distinct: Vec<&Vec<Ternary>> = Vec::new();
        for col in &self.cols {
            if !distinct.contains(&col) {
                distinct.push(col);
            }
        }
        distinct.len()
    }

    /// Are columns `i` and `j` compatible (Definition 3.7 pointwise)?
    pub fn columns_compatible(&self, i: usize, j: usize) -> bool {
        self.cols[i]
            .iter()
            .zip(&self.cols[j])
            .all(|(a, b)| a.compatible(*b))
    }

    /// The compatibility graph of the columns (Definition 3.8).
    pub fn compatibility_graph(&self) -> CompatGraph {
        let mut g = CompatGraph::new(self.num_columns());
        for i in 0..self.num_columns() {
            for j in i + 1..self.num_columns() {
                if self.columns_compatible(i, j) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Merges compatible columns via Algorithm 3.2 (Example 3.4): each
    /// clique's columns are replaced by their pointwise intersection.
    /// Returns the merged chart and the clique index (code) of every
    /// original column.
    ///
    /// For single-output ternary columns, pairwise compatibility inside a
    /// clique implies joint intersectability (at most one specified value
    /// per row), so the intersection always exists.
    pub fn merge_compatible(&self, heuristic: CoverHeuristic) -> (DecompositionChart, Vec<usize>) {
        let graph = self.compatibility_graph();
        let cover = graph.clique_cover(heuristic);
        let mut code_of_column = vec![usize::MAX; self.num_columns()];
        let mut merged_cols = self.cols.clone();
        for (code, clique) in cover.iter().enumerate() {
            let mut merged = self.cols[clique[0]].clone();
            for &c in &clique[1..] {
                for (m, v) in merged.iter_mut().zip(&self.cols[c]) {
                    *m = m
                        .intersect(*v)
                        .expect("pairwise-compatible ternary cliques intersect");
                }
            }
            for &c in clique {
                code_of_column[c] = code;
                merged_cols[c] = merged.clone();
            }
        }
        (
            DecompositionChart {
                bound: self.bound.clone(),
                free: self.free.clone(),
                cols: merged_cols,
            },
            code_of_column,
        )
    }

    /// Number of `h`-block outputs needed for this chart: `⌈log₂ µ⌉`
    /// (0 when every column is identical).
    pub fn rails(&self) -> usize {
        let mu = self.multiplicity();
        usize::BITS as usize - (mu - 1).leading_zeros() as usize
    }

    /// Does `candidate` narrow this chart? True when every candidate entry
    /// is pointwise compatible with the specification (so any completion of
    /// the candidate realizes the spec wherever the spec is defined and the
    /// candidate is at least as defined).
    pub fn narrowed_by(&self, candidate: &DecompositionChart) -> bool {
        self.cols.len() == candidate.cols.len()
            && self.cols.iter().zip(&candidate.cols).all(|(spec, got)| {
                spec.iter().zip(got).all(|(s, g)| {
                    s.intersect(*g) == Some(*g) // g refines s
                })
            })
    }

    /// Materializes the decomposition `f(X₁,X₂) = g(h(X₁), X₂)` from this
    /// chart: `h` maps each bound assignment to its clique code, `g` maps
    /// `(code, free assignment)` to the merged column's value (don't cares
    /// completed to 0).
    ///
    /// Returns `(h, g)` where `h[a]` is the code of bound assignment `a`
    /// and `g[code][r]` the output on free assignment `r`. The composition
    /// realizes every specified chart entry (checked in tests via
    /// [`DecompositionChart::narrowed_by`]-style admission).
    pub fn realize(&self, heuristic: CoverHeuristic) -> ChartRealization {
        let (merged, codes) = self.merge_compatible(heuristic);
        let num_codes = codes.iter().copied().max().map_or(1, |c| c + 1);
        let rows = self.cols[0].len();
        let mut g = vec![vec![false; rows]; num_codes];
        for (c, &code) in codes.iter().enumerate() {
            for r in 0..rows {
                // Merged columns are identical within a clique; completing
                // don't cares to 0.
                g[code][r] = merged.column(c)[r] == Ternary::One;
            }
        }
        ChartRealization { h: codes, g }
    }

    /// The worked example of §3.1 (Tables 2 and 3): a 4-input, 1-output
    /// ISF whose columns Φ₁..Φ₄ are pairwise compatible exactly for
    /// {Φ₁,Φ₂}, {Φ₁,Φ₃}, {Φ₃,Φ₄}.
    pub fn paper_table2() -> DecompositionChart {
        use Ternary::{DontCare as D, One as I, Zero as O};
        DecompositionChart::from_columns(vec![
            vec![I, I, D, O], // Φ1
            vec![D, I, I, O], // Φ2
            vec![I, D, O, O], // Φ3
            vec![I, O, O, D], // Φ4
        ])
    }
}

/// A materialized two-block realization of a chart (see
/// [`DecompositionChart::realize`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChartRealization {
    /// `h[a]` = code of bound-set assignment `a`.
    pub h: Vec<usize>,
    /// `g[code][r]` = output for `(code, free-set assignment r)`.
    pub g: Vec<Vec<bool>>,
}

impl ChartRealization {
    /// Rails between the blocks: `⌈log₂ #codes⌉`.
    pub fn rails(&self) -> usize {
        let mu = self.g.len().max(1);
        usize::BITS as usize - (mu - 1).leading_zeros() as usize
    }

    /// Evaluates the composition on `(bound assignment, free assignment)`.
    pub fn eval(&self, bound: usize, free: usize) -> bool {
        self.g[self.h[bound]][free]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Ternary::{DontCare as D, One as I, Zero as O};

    #[test]
    fn chart_from_table_places_entries() {
        // f(x0,x1,x2) = x0 XOR x2, bound = {x0}, free = {x1, x2}.
        let mut table = TruthTable::new(3, 1);
        for r in 0..8usize {
            let v = (r & 1 == 1) ^ (r >> 2 & 1 == 1);
            table.set(r, 0, Ternary::from_bool(v));
        }
        let chart = DecompositionChart::from_table(&table, 0, &[0]);
        assert_eq!(chart.num_columns(), 2);
        assert_eq!(chart.free(), &[1, 2]);
        // Column 0 (x0=0): rows (x1,x2) -> x2: (0,0,1,1).
        assert_eq!(chart.column(0), &[O, O, I, I]);
        assert_eq!(chart.column(1), &[I, I, O, O]);
        assert_eq!(chart.multiplicity(), 2);
    }

    #[test]
    fn example33_multiplicity_four() {
        let chart = DecompositionChart::paper_table2();
        assert_eq!(chart.multiplicity(), 4, "Example 3.3: µ = 4");
    }

    #[test]
    fn example34_compatibility_pairs() {
        let chart = DecompositionChart::paper_table2();
        assert!(chart.columns_compatible(0, 1), "Φ1 ∼ Φ2");
        assert!(chart.columns_compatible(0, 2), "Φ1 ∼ Φ3");
        assert!(chart.columns_compatible(2, 3), "Φ3 ∼ Φ4");
        assert!(!chart.columns_compatible(1, 2), "Φ2 ≁ Φ3");
        assert!(!chart.columns_compatible(0, 3), "Φ1 ≁ Φ4");
        assert!(!chart.columns_compatible(1, 3), "Φ2 ≁ Φ4");
    }

    #[test]
    fn example34_merge_reduces_multiplicity_to_two() {
        let chart = DecompositionChart::paper_table2();
        let (merged, codes) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
        assert_eq!(merged.multiplicity(), 2, "Example 3.4: µ = 2");
        // Φ1 and Φ2 share a code, Φ3 and Φ4 share the other.
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[2], codes[3]);
        assert_ne!(codes[0], codes[2]);
        // Merged columns narrow every don't care consistently.
        assert_eq!(merged.column(0), merged.column(1));
        assert_eq!(merged.column(0), &[I, I, I, O], "Φ1* = Φ1 · Φ2");
        assert_eq!(merged.column(2), &[I, O, O, O], "Φ3* = Φ3 · Φ4");
    }

    #[test]
    fn merged_chart_realizes_the_original() {
        let chart = DecompositionChart::paper_table2();
        let (merged, _) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
        for c in 0..chart.num_columns() {
            for r in 0..chart.column(c).len() {
                let spec = chart.column(c)[r];
                let got = merged.column(c)[r];
                assert!(
                    spec.intersect(got).is_some(),
                    "column {c} row {r}: {got} incompatible with spec {spec}"
                );
            }
        }
    }

    #[test]
    fn realization_composes_to_the_spec() {
        let chart = DecompositionChart::paper_table2();
        let realization = chart.realize(CoverHeuristic::MinDegreeFirst);
        assert_eq!(realization.rails(), 1, "µ = 2 after merging");
        for c in 0..chart.num_columns() {
            for r in 0..chart.column(c).len() {
                let got = realization.eval(c, r);
                assert!(
                    chart.column(c)[r].admits(got),
                    "column {c} row {r}: g(h) = {got} violates the spec"
                );
            }
        }
    }

    #[test]
    fn realization_of_fully_specified_chart_is_exact() {
        let chart =
            DecompositionChart::from_columns(vec![vec![O, I], vec![I, O], vec![O, O], vec![I, I]]);
        let realization = chart.realize(CoverHeuristic::MinDegreeFirst);
        assert_eq!(realization.rails(), 2);
        for c in 0..4 {
            for r in 0..2 {
                assert_eq!(
                    Ternary::from_bool(realization.eval(c, r)),
                    chart.column(c)[r]
                );
            }
        }
    }

    #[test]
    fn rails_is_log2_of_multiplicity() {
        let chart = DecompositionChart::paper_table2();
        assert_eq!(chart.rails(), 2, "µ=4 needs 2 rails");
        let (merged, _) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
        assert_eq!(merged.rails(), 1, "µ=2 needs 1 rail");
    }

    #[test]
    fn fully_specified_chart_has_no_mergeable_columns() {
        let chart =
            DecompositionChart::from_columns(vec![vec![O, I], vec![I, O], vec![O, O], vec![I, I]]);
        let (merged, codes) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
        assert_eq!(merged.multiplicity(), 4);
        let mut codes_sorted = codes.clone();
        codes_sorted.sort_unstable();
        codes_sorted.dedup();
        assert_eq!(codes_sorted.len(), 4);
    }

    #[test]
    fn all_dc_chart_merges_to_one() {
        let chart =
            DecompositionChart::from_columns(vec![vec![D, D], vec![D, D], vec![D, D], vec![D, D]]);
        // All columns identical: multiplicity is already 1.
        assert_eq!(chart.multiplicity(), 1);
        let (merged, codes) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
        assert_eq!(merged.multiplicity(), 1);
        assert!(codes.iter().all(|&c| c == codes[0]));
    }

    #[test]
    #[should_panic(expected = "free set must be non-empty")]
    fn bound_set_cannot_cover_everything() {
        let table = TruthTable::new(2, 1);
        let _ = DecompositionChart::from_table(&table, 0, &[0, 1]);
    }
}
