//! Functional decomposition read directly off a BDD_for_CF (§3.1,
//! Theorem 3.1).
//!
//! For a variable order `(X₁, …rest)` where the top `k` levels are input
//! variables, the nodes hanging below the cut at level `k` are the column
//! functions; the `H` block maps `X₁` to a code identifying the column and
//! the `G` block computes the rest. Theorem 3.1: the necessary and
//! sufficient number of wires between the blocks is `⌈log₂ W⌉` where `W`
//! is the BDD_for_CF width at the cut.

use bddcf_bdd::hasher::FastMap;
use bddcf_bdd::{NodeId, FALSE, TRUE};
use bddcf_core::{Cf, Role};

/// A single-cut decomposition `F(X₁, X₂) = G(H(X₁), X₂)` extracted from a
/// [`Cf`].
#[derive(Clone, Debug)]
pub struct BddDecomposition {
    /// Number of top levels forming the bound set `X₁` (all inputs).
    pub num_bound_levels: usize,
    /// Input indices of the bound set, in level order.
    pub bound_inputs: Vec<usize>,
    /// The distinct column nodes below the cut, in code order.
    pub columns: Vec<NodeId>,
    /// `code[a]` = column code for bound assignment `a` (bit `k` of `a` is
    /// the value of `bound_inputs[k]`).
    pub code: Vec<usize>,
    /// Rails between the blocks: `⌈log₂ W⌉` (Theorem 3.1).
    pub rails: usize,
}

/// Extracts the decomposition of `cf` at the cut below the top `k` levels.
///
/// # Panics
///
/// Panics if `k` is 0, not below the total variable count, or if any of the
/// top `k` levels holds an output variable (the bound set must be inputs).
pub fn decompose_at(cf: &Cf, k: usize) -> BddDecomposition {
    let mgr = cf.manager();
    let layout = cf.layout();
    assert!(k > 0 && k < layout.num_vars(), "cut level out of range");
    let bound_inputs: Vec<usize> = (0..k as u32)
        .map(|level| match layout.role(mgr.var_at(level)) {
            Role::Input(i) => i,
            Role::Output(j) => panic!("output y{} in the bound set (level {level})", j + 1),
        })
        .collect();

    let mut columns: Vec<NodeId> = Vec::new();
    let mut code_of: FastMap<NodeId, usize> = FastMap::default();
    let mut code = Vec::with_capacity(1 << k);
    for a in 0..1usize << k {
        // Walk the top k levels under assignment a.
        let mut cur = cf.root();
        while cur != FALSE && mgr.level_of_node(cur) < k as u32 {
            let level = mgr.level_of_node(cur) as usize;
            cur = if a >> level & 1 == 1 {
                mgr.hi(cur)
            } else {
                mgr.lo(cur)
            };
        }
        assert_ne!(cur, FALSE, "live χ cannot reach 0 on an input-only path");
        let c = *code_of.entry(cur).or_insert_with(|| {
            columns.push(cur);
            columns.len() - 1
        });
        code.push(c);
    }
    let rails = rails_for(columns.len());
    BddDecomposition {
        num_bound_levels: k,
        bound_inputs,
        columns,
        code,
        rails,
    }
}

/// `⌈log₂ w⌉` — the Theorem-3.1 wire count for width `w` (0 for `w = 1`:
/// a single column carries no information).
pub fn rails_for(w: usize) -> usize {
    assert!(w > 0);
    (usize::BITS - (w - 1).leading_zeros()) as usize
}

impl BddDecomposition {
    /// Evaluates the decomposed network on a full input assignment: `H`
    /// maps the bound bits to a column code, then the column is walked with
    /// the remaining inputs (outputs read off the nodes, prefer-0 for
    /// absent outputs). Must agree with [`Cf::eval_completed`].
    pub fn eval(&self, cf: &Cf, input: &[bool]) -> u64 {
        let layout = cf.layout();
        assert_eq!(input.len(), layout.num_inputs());
        let mut a = 0usize;
        for (k, &i) in self.bound_inputs.iter().enumerate() {
            if input[i] {
                a |= 1 << k;
            }
        }
        let mut cur = self.columns[self.code[a]];
        let mgr = cf.manager();
        let mut word = 0u64;
        while cur != TRUE {
            assert_ne!(cur, FALSE, "column walk reached constant 0");
            let var = mgr.var_of(cur);
            match layout.role(var) {
                Role::Input(i) => {
                    cur = if input[i] { mgr.hi(cur) } else { mgr.lo(cur) };
                }
                Role::Output(j) => {
                    let lo = mgr.lo(cur);
                    if lo == FALSE {
                        word |= 1 << j;
                        cur = mgr.hi(cur);
                    } else {
                        cur = lo;
                    }
                }
            }
        }
        word
    }

    /// Is the decomposition non-trivial, i.e. does the `H` block compress
    /// (`rails < |X₁|`)?
    pub fn is_profitable(&self) -> bool {
        self.rails < self.num_bound_levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_bdd::Var;
    use bddcf_core::{CfLayout, IsfBdds};
    use bddcf_logic::TruthTable;

    fn paper_cf() -> Cf {
        let table = TruthTable::paper_table1();
        Cf::build_with_order(
            CfLayout::new(4, 2),
            &[Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)],
            |mgr, layout| IsfBdds::from_truth_table(mgr, layout, &table),
        )
    }

    #[test]
    fn rails_formula() {
        assert_eq!(rails_for(1), 0);
        assert_eq!(rails_for(2), 1);
        assert_eq!(rails_for(3), 2);
        assert_eq!(rails_for(4), 2);
        assert_eq!(rails_for(5), 3);
        assert_eq!(rails_for(8), 3);
        assert_eq!(rails_for(9), 4);
    }

    #[test]
    fn columns_match_width_at_cut() {
        let cf = paper_cf();
        for k in 1..=3usize {
            let d = decompose_at(&cf, k);
            let width = cf.width_profile().at_cut(k);
            assert_eq!(
                d.columns.len(),
                width,
                "cut {k}: columns must equal the Definition-3.5 width"
            );
            assert_eq!(d.rails, rails_for(width));
        }
    }

    #[test]
    fn decomposed_network_agrees_with_direct_evaluation() {
        let cf = paper_cf();
        for k in 1..=3usize {
            let d = decompose_at(&cf, k);
            for r in 0..16usize {
                let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
                assert_eq!(
                    d.eval(&cf, &input),
                    cf.eval_completed(&input),
                    "cut {k}, row {r}"
                );
            }
        }
    }

    #[test]
    fn decomposition_after_width_reduction_gets_narrower() {
        let mut cf = paper_cf();
        let before = decompose_at(&cf, 3).columns.len();
        cf.reduce_alg33_default();
        let after = decompose_at(&cf, 3);
        assert!(after.columns.len() <= before);
        // Still a correct realization of the spec.
        let table = TruthTable::paper_table1();
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let word = after.eval(&cf, &input);
            assert!(
                (0..2).all(|j| table.get(r, j).admits(word >> j & 1 == 1)),
                "row {r} word {word:02b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "in the bound set")]
    fn bound_set_must_be_inputs() {
        let cf = paper_cf();
        // Level 3 holds y1 in the paper order — cutting at k=4 includes it.
        let _ = decompose_at(&cf, 4);
    }

    #[test]
    fn profitability_reflects_compression() {
        // XOR of 3 inputs: width 2 at every cut; cutting below 2 levels
        // gives rails = 1 < 2: profitable.
        let mut table = TruthTable::new(3, 1);
        for r in 0..8usize {
            let parity = (r.count_ones() & 1) == 1;
            table.set(r, 0, bddcf_logic::Ternary::from_bool(parity));
        }
        let cf = Cf::from_truth_table(&table);
        let d = decompose_at(&cf, 2);
        assert_eq!(d.columns.len(), 2);
        assert!(d.is_profitable());
    }
}
