//! `bddcf` — facade crate re-exporting the whole workspace.
//!
//! Reproduction of Sasao & Matsuura, *"BDD representation for incompletely
//! specified multiple-output logic functions and its applications to
//! functional decomposition"* (DAC 2005 / IEICE Trans. Fundamentals 2007).
//!
//! See the individual crates for details:
//!
//! * [`bdd`] — the ROBDD/MTBDD engine.
//! * [`logic`] — ternary logic, truth tables, ISF specifications.
//! * [`core`] — BDD_for_CF construction and width-reduction algorithms
//!   (the paper's contribution).
//! * [`decomp`] — decomposition charts and functional decomposition.
//! * [`cascade`] — LUT cascade synthesis and the auxiliary-memory address
//!   generator architecture.
//! * [`funcs`] — benchmark function generators.
//! * [`io`] — PLA input/output and Verilog emission.
//! * [`check`] — layered structural/semantic invariant analysis
//!   (`bddcf check`, and phase-boundary assertions behind the `check`
//!   cargo feature).
//! * [`serve`] — the fault-tolerant synthesis daemon (`bddcf serve`) and
//!   its chaos harness (`bddcf loadtest`): admission control, deadlines,
//!   worker quarantine, crash recovery over a durable spool.
//! * [`bench`] — the measurement pipeline behind the table binaries and
//!   `bddcf bench` (machine-readable wall-clock + engine-health reports).

#![forbid(unsafe_code)]

pub use bddcf_bdd as bdd;
pub use bddcf_bench as bench;
pub use bddcf_cascade as cascade;
pub use bddcf_check as check;
pub use bddcf_core as core;
pub use bddcf_decomp as decomp;
pub use bddcf_funcs as funcs;
pub use bddcf_io as io;
pub use bddcf_logic as logic;
pub use bddcf_serve as serve;
