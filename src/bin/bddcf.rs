//! `bddcf` — command-line front end.
//!
//! ```text
//! bddcf stats   <file.pla> [--sift N]
//!     BDD_for_CF widths/nodes for DC=0, DC=1, ISF, Alg 3.1, Alg 3.3.
//!
//! bddcf reduce  <file.pla> [--method alg31|alg33|fixpoint] [--sift N] [-o out.pla]
//!     Reduce and (for ≤ 16 inputs) write the completed function as a PLA.
//!
//! bddcf cascade <file.pla> [--max-in K] [--max-out L] [--sift N]
//!               [--verilog out.v] [--save out.cas]
//!     Synthesize an LUT cascade; optionally emit Verilog and/or save the
//!     cell tables.
//!
//! bddcf sim <file.cas> <bits>
//!     Evaluate a saved cascade on an input bit string (input 0 first).
//!
//! bddcf check [label-substring...] [--suite small|table4] [--samples N]
//!             [--max-iter N]
//!     Run the bddcf-check invariant layers (manager integrity, CF lints,
//!     refinement oracle, cascade lints) over registry benchmarks; exits
//!     nonzero if any layer reports a finding.
//! ```
//!
//! PLA semantics follow `bddcf_io::pla` (`fr`-type: uncovered minterms are
//! don't cares; add `.type fd` to the file for unlisted-means-0).

use bddcf::bdd::ReorderCost;
use bddcf::cascade::{synthesize, CascadeOptions};
use bddcf::core::{Alg33Options, Cf};
use bddcf::io::{cascade_to_verilog, parse_pla, read_cascade, write_cascade, write_pla};
use bddcf::logic::{Ternary, TruthTable};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `bddcf help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing subcommand (stats | reduce | cascade | help)".into());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            Ok(())
        }
        "stats" => stats(&args[1..]),
        "reduce" => reduce(&args[1..]),
        "cascade" => cascade(&args[1..]),
        "sim" => sim(&args[1..]),
        "check" => check(&args[1..]),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

const USAGE: &str = "\
bddcf — BDD_for_CF width reduction and LUT cascade synthesis

USAGE:
  bddcf stats   <file.pla> [--sift N]
  bddcf reduce  <file.pla> [--method alg31|alg33|fixpoint] [--sift N] [-o out.pla]
  bddcf cascade <file.pla> [--max-in K] [--max-out L] [--sift N]
                [--verilog out.v] [--save out.cas]
  bddcf sim <file.cas> <input-bits>
  bddcf check [label-substring...] [--suite small|table4] [--samples N]
              [--max-iter N]
";

struct Flags {
    positional: Vec<String>,
    sift: usize,
    method: String,
    output: Option<String>,
    max_in: usize,
    max_out: usize,
    verilog: Option<String>,
    save: Option<String>,
    suite: String,
    samples: u64,
    max_iter: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        sift: 1,
        method: "alg33".into(),
        output: None,
        max_in: 12,
        max_out: 10,
        verilog: None,
        save: None,
        suite: "small".into(),
        samples: 128,
        max_iter: 4,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--sift" => {
                flags.sift = grab("--sift")?
                    .parse()
                    .map_err(|e| format!("--sift: {e}"))?
            }
            "--method" => flags.method = grab("--method")?,
            "-o" | "--output" => flags.output = Some(grab("-o")?),
            "--max-in" => {
                flags.max_in = grab("--max-in")?
                    .parse()
                    .map_err(|e| format!("--max-in: {e}"))?
            }
            "--max-out" => {
                flags.max_out = grab("--max-out")?
                    .parse()
                    .map_err(|e| format!("--max-out: {e}"))?
            }
            "--verilog" => flags.verilog = Some(grab("--verilog")?),
            "--save" => flags.save = Some(grab("--save")?),
            "--suite" => flags.suite = grab("--suite")?,
            "--samples" => {
                flags.samples = grab("--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?
            }
            "--max-iter" => {
                flags.max_iter = grab("--max-iter")?
                    .parse()
                    .map_err(|e| format!("--max-iter: {e}"))?
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn load_cf(path: &str, sift_passes: usize) -> Result<Cf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pla = parse_pla(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut cf = pla.to_cf().map_err(|e| format!("{path}: {e}"))?;
    if sift_passes > 0 {
        cf.optimize_order(ReorderCost::SumOfWidths, sift_passes);
    }
    Ok(cf)
}

fn stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("stats takes exactly one PLA file".into());
    };
    let cf = load_cf(path, flags.sift)?;
    println!(
        "{}: {} inputs, {} outputs",
        path,
        cf.layout().num_inputs(),
        cf.layout().num_outputs()
    );
    println!(
        "ISF:      width {:>6}  nodes {:>7}",
        cf.max_width(),
        cf.node_count()
    );
    let mut a31 = cf.clone();
    let s31 = a31.reduce_alg31();
    println!(
        "Alg 3.1:  width {:>6}  nodes {:>7}  ({} merges)",
        s31.max_width_after, s31.nodes_after, s31.merges
    );
    let mut a33 = cf.clone();
    let s33 = a33.reduce_alg33_default();
    println!(
        "Alg 3.3:  width {:>6}  nodes {:>7}  ({} columns merged)",
        s33.max_width_after, s33.nodes_after, s33.columns_merged
    );
    let mut sup = cf;
    let removed = sup.reduce_support_variables();
    println!(
        "§3.3:     {} redundant input(s) removable: {:?}",
        removed.len(),
        removed
            .iter()
            .map(|i| format!("x{}", i + 1))
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn reduce(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("reduce takes exactly one PLA file".into());
    };
    let mut cf = load_cf(path, flags.sift)?;
    let before = (cf.max_width(), cf.node_count());
    match flags.method.as_str() {
        "alg31" => {
            cf.reduce_alg31();
        }
        "alg33" => {
            cf.reduce_alg33_default();
        }
        "fixpoint" => {
            cf.reduce_to_fixpoint(&Alg33Options::default(), 4);
        }
        other => return Err(format!("unknown --method {other}")),
    }
    println!(
        "width {} -> {}, nodes {} -> {}",
        before.0,
        cf.max_width(),
        before.1,
        cf.node_count()
    );
    if let Some(out_path) = flags.output {
        let n = cf.layout().num_inputs();
        if n > 16 {
            return Err("-o only supported for functions with <= 16 inputs".into());
        }
        let m = cf.layout().num_outputs();
        let mut table = TruthTable::new(n, m);
        for r in 0..1usize << n {
            let input: Vec<bool> = (0..n).map(|i| r >> i & 1 == 1).collect();
            let word = cf.eval_completed(&input);
            for j in 0..m {
                table.set(r, j, Ternary::from_bool(word >> j & 1 == 1));
            }
        }
        std::fs::write(&out_path, write_pla(&table, None))
            .map_err(|e| format!("{out_path}: {e}"))?;
        println!("completed function written to {out_path}");
    }
    Ok(())
}

fn cascade(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("cascade takes exactly one PLA file".into());
    };
    let mut cf = load_cf(path, flags.sift)?;
    cf.reduce_alg33_default();
    let options = CascadeOptions {
        max_cell_inputs: flags.max_in,
        max_cell_outputs: flags.max_out,
        ..CascadeOptions::default()
    };
    let result = synthesize(&mut cf, &options).map_err(|e| {
        format!("{e} — try larger cells or split the outputs (see bddcf_cascade::multi)")
    })?;
    println!(
        "cascade: {} cells, {} LUT outputs, {} memory bits, max {} rails",
        result.num_cells(),
        result.lut_outputs(),
        result.memory_bits(),
        result.max_rails()
    );
    for (i, cell) in result.cells().iter().enumerate() {
        println!(
            "  cell {i}: {} rails + inputs {:?} -> {} rails + outputs {:?}",
            cell.rails_in(),
            cell.input_ids().iter().map(|i| i + 1).collect::<Vec<_>>(),
            cell.rails_out(),
            cell.output_ids().iter().map(|j| j + 1).collect::<Vec<_>>()
        );
    }
    if let Some(cas_path) = flags.save {
        std::fs::write(&cas_path, write_cascade(&result))
            .map_err(|e| format!("{cas_path}: {e}"))?;
        println!("cell tables written to {cas_path}");
    }
    if let Some(v_path) = flags.verilog {
        let module = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("cascade")
            .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
        std::fs::write(&v_path, cascade_to_verilog(&result, &module))
            .map_err(|e| format!("{v_path}: {e}"))?;
        println!("Verilog written to {v_path}");
    }
    Ok(())
}

fn sim(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path, bits] = flags.positional.as_slice() else {
        return Err("sim takes a .cas file and an input bit string".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cascade = read_cascade(&text).map_err(|e| format!("{path}: {e}"))?;
    if bits.len() != cascade.num_inputs() {
        return Err(format!(
            "expected {} input bits, got {}",
            cascade.num_inputs(),
            bits.len()
        ));
    }
    let input: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid input bit {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    let word = cascade.eval(&input);
    let rendered: String = (0..cascade.num_outputs())
        .map(|j| if word >> j & 1 == 1 { '1' } else { '0' })
        .collect();
    println!("{rendered}");
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let suite = match flags.suite.as_str() {
        "small" => bddcf::funcs::small_benchmarks(),
        "table4" => bddcf::funcs::table4_benchmarks(),
        other => return Err(format!("unknown --suite {other} (small | table4)")),
    };
    let selected: Vec<_> = suite
        .into_iter()
        .filter(|entry| {
            flags.positional.is_empty()
                || flags
                    .positional
                    .iter()
                    .any(|needle| entry.label.to_lowercase().contains(&needle.to_lowercase()))
        })
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "no benchmark in the {:?} suite matches {:?}",
            flags.suite, flags.positional
        ));
    }
    let options = bddcf::check::CheckOptions {
        samples: flags.samples,
        max_iterations: flags.max_iter,
        ..bddcf::check::CheckOptions::default()
    };
    let mut failures = 0usize;
    for entry in &selected {
        let result = bddcf::check::check_benchmark(entry.benchmark.as_ref(), &options);
        let verdict = if result.report.is_clean() {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{verdict:4} {:<28} width {} -> {}, {} cascade(s), {} cell(s)",
            entry.label,
            result.max_width.0,
            result.max_width.1,
            result.num_cascades,
            result.num_cells
        );
        if !result.report.is_clean() {
            failures += 1;
            for finding in result.report.findings() {
                println!("     {finding}");
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} benchmark(s) violated pipeline invariants",
            selected.len()
        ));
    }
    println!(
        "all {} benchmark(s) pass every invariant layer",
        selected.len()
    );
    Ok(())
}
