//! `bddcf` — command-line front end.
//!
//! ```text
//! bddcf stats   <file.pla> [--sift N]
//!     BDD_for_CF widths/nodes for DC=0, DC=1, ISF, Alg 3.1, Alg 3.3.
//!
//! bddcf reduce  <file.pla> [--method alg31|alg33|fixpoint] [--sift N] [-o out.pla]
//!     Reduce and (for ≤ 16 inputs) write the completed function as a PLA.
//!
//! bddcf cascade <file.pla> [--max-in K] [--max-out L] [--sift N]
//!               [--verilog out.v] [--save out.cas]
//!     Synthesize an LUT cascade; optionally emit Verilog and/or save the
//!     cell tables.
//!
//! bddcf sim <file.cas> <bits>
//!     Evaluate a saved cascade on an input bit string (input 0 first).
//!
//! bddcf check [label-substring...] [--suite small|table4] [--samples N]
//!             [--max-iter N]
//!     Run the bddcf-check invariant layers (manager integrity, CF lints,
//!     refinement oracle, cascade lints) over registry benchmarks; exits
//!     nonzero if any layer reports a finding.
//!
//! bddcf inject [label-substring...] [--suite small|table4] [--seed N]
//!              [--points N] [--max-iter N] [--samples N]
//!     Seeded fault injection: exhaust node/step budgets and fire
//!     cancellations at random points of the governed pipeline, auditing
//!     every survivor; exits nonzero on any invariant violation.
//! ```
//!
//! `stats`, `reduce`, and `cascade` accept resource-governor flags
//! `--node-limit N`, `--step-limit N`, and `--time-budget SECONDS`. Under a
//! budget the reductions *degrade gracefully*: steps that do not fit are
//! downgraded or skipped (reported on stderr) and the result is a less
//! reduced but still valid BDD_for_CF; only construction or synthesis that
//! cannot complete at all exits nonzero, with a typed error and no panic.
//!
//! PLA semantics follow `bddcf_io::pla` (`fr`-type: uncovered minterms are
//! don't cares; add `.type fd` to the file for unlisted-means-0).

use bddcf::bdd::{Budget, ReorderCost};
use bddcf::cascade::{synthesize_governed, CascadeOptions, SynthesisError};
use bddcf::core::degrade::{DegradationReport, DegradeAction, Phase};
use bddcf::core::{Alg33Options, Cf};
use bddcf::io::{cascade_to_verilog, parse_pla, read_cascade, write_cascade, write_pla};
use bddcf::logic::{Ternary, TruthTable};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `bddcf help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing subcommand (stats | reduce | cascade | help)".into());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            Ok(())
        }
        "stats" => stats(&args[1..]),
        "reduce" => reduce(&args[1..]),
        "cascade" => cascade(&args[1..]),
        "sim" => sim(&args[1..]),
        "check" => check(&args[1..]),
        "inject" => inject(&args[1..]),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

const USAGE: &str = "\
bddcf — BDD_for_CF width reduction and LUT cascade synthesis

USAGE:
  bddcf stats   <file.pla> [--sift N]
  bddcf reduce  <file.pla> [--method alg31|alg33|fixpoint] [--sift N] [-o out.pla]
  bddcf cascade <file.pla> [--max-in K] [--max-out L] [--sift N]
                [--verilog out.v] [--save out.cas]
  bddcf sim <file.cas> <input-bits>
  bddcf check [label-substring...] [--suite small|table4] [--samples N]
              [--max-iter N]
  bddcf inject [label-substring...] [--suite small|table4] [--seed N]
               [--points N] [--max-iter N] [--samples N]

RESOURCE GOVERNOR (stats | reduce | cascade):
  --node-limit N       cap the BDD arena at N nodes
  --step-limit N       cap charged operation steps at N
  --time-budget SECS   wall-clock allowance (fractional seconds ok)
  Reductions degrade gracefully under a budget (downgrades reported on
  stderr, result stays valid); hard exhaustion exits nonzero, no panic.
";

struct Flags {
    positional: Vec<String>,
    sift: usize,
    method: String,
    output: Option<String>,
    max_in: usize,
    max_out: usize,
    verilog: Option<String>,
    save: Option<String>,
    suite: String,
    samples: u64,
    max_iter: usize,
    node_limit: Option<usize>,
    step_limit: Option<u64>,
    time_budget: Option<f64>,
    seed: u64,
    points: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        sift: 1,
        method: "alg33".into(),
        output: None,
        max_in: 12,
        max_out: 10,
        verilog: None,
        save: None,
        suite: "small".into(),
        samples: 128,
        max_iter: 4,
        node_limit: None,
        step_limit: None,
        time_budget: None,
        seed: 0xb0d0_cf5e,
        points: 100,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--sift" => {
                flags.sift = grab("--sift")?
                    .parse()
                    .map_err(|e| format!("--sift: {e}"))?
            }
            "--method" => flags.method = grab("--method")?,
            "-o" | "--output" => flags.output = Some(grab("-o")?),
            "--max-in" => {
                flags.max_in = grab("--max-in")?
                    .parse()
                    .map_err(|e| format!("--max-in: {e}"))?
            }
            "--max-out" => {
                flags.max_out = grab("--max-out")?
                    .parse()
                    .map_err(|e| format!("--max-out: {e}"))?
            }
            "--verilog" => flags.verilog = Some(grab("--verilog")?),
            "--save" => flags.save = Some(grab("--save")?),
            "--suite" => flags.suite = grab("--suite")?,
            "--samples" => {
                flags.samples = grab("--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?
            }
            "--max-iter" => {
                flags.max_iter = grab("--max-iter")?
                    .parse()
                    .map_err(|e| format!("--max-iter: {e}"))?
            }
            "--node-limit" => {
                flags.node_limit = Some(
                    grab("--node-limit")?
                        .parse()
                        .map_err(|e| format!("--node-limit: {e}"))?,
                )
            }
            "--step-limit" => {
                flags.step_limit = Some(
                    grab("--step-limit")?
                        .parse()
                        .map_err(|e| format!("--step-limit: {e}"))?,
                )
            }
            "--time-budget" => {
                let secs: f64 = grab("--time-budget")?
                    .parse()
                    .map_err(|e| format!("--time-budget: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--time-budget needs a positive number of seconds".into());
                }
                flags.time_budget = Some(secs);
            }
            "--seed" => {
                flags.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--points" => {
                flags.points = grab("--points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

impl Flags {
    /// The resource budget requested on the command line, if any.
    fn budget(&self) -> Option<Budget> {
        if self.node_limit.is_none() && self.step_limit.is_none() && self.time_budget.is_none() {
            return None;
        }
        let mut budget = Budget::default();
        if let Some(n) = self.node_limit {
            budget = budget.with_node_limit(n);
        }
        if let Some(s) = self.step_limit {
            budget = budget.with_step_limit(s);
        }
        if let Some(secs) = self.time_budget {
            budget = budget.with_time_budget(Duration::from_secs_f64(secs));
        }
        Some(budget)
    }
}

/// Prints a non-empty degradation report to stderr: the result the command
/// goes on to print is less reduced than an unbudgeted run's, but valid.
fn report_degradations(report: &DegradationReport) {
    if report.is_clean() {
        return;
    }
    eprintln!(
        "budget pressure: {} downgrade(s); the result is less reduced but still valid:",
        report.events.len()
    );
    for line in report.render().lines() {
        eprintln!("  {line}");
    }
}

fn load_cf(path: &str, sift_passes: usize) -> Result<Cf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pla = parse_pla(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut cf = pla.to_cf().map_err(|e| format!("{path}: {e}"))?;
    if sift_passes > 0 {
        cf.optimize_order(ReorderCost::SumOfWidths, sift_passes);
    }
    Ok(cf)
}

fn stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("stats takes exactly one PLA file".into());
    };
    let cf = load_cf(path, flags.sift)?;
    println!(
        "{}: {} inputs, {} outputs",
        path,
        cf.layout().num_inputs(),
        cf.layout().num_outputs()
    );
    println!(
        "ISF:      width {:>6}  nodes {:>7}",
        cf.max_width(),
        cf.node_count()
    );
    let budget = flags.budget();
    let mut degradations = DegradationReport::new();
    let mut a31 = cf.clone();
    if let Some(b) = budget.clone() {
        a31.manager_mut().set_budget(b);
    }
    match a31.try_reduce_alg31() {
        Ok(s31) => println!(
            "Alg 3.1:  width {:>6}  nodes {:>7}  ({} merges)",
            s31.max_width_after, s31.nodes_after, s31.merges
        ),
        Err(cause) => {
            degradations.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
            println!("Alg 3.1:  (skipped: {cause})");
        }
    }
    let mut a33 = cf.clone();
    if let Some(b) = budget.clone() {
        a33.manager_mut().set_budget(b);
    }
    let s33 = a33.reduce_alg33_governed(&Alg33Options::default(), &mut degradations);
    println!(
        "Alg 3.3:  width {:>6}  nodes {:>7}  ({} columns merged)",
        s33.max_width_after, s33.nodes_after, s33.columns_merged
    );
    let mut sup = cf;
    if let Some(b) = budget {
        sup.manager_mut().set_budget(b);
    }
    let removed = sup.reduce_support_variables_governed(&mut degradations);
    println!(
        "§3.3:     {} redundant input(s) removable: {:?}",
        removed.len(),
        removed
            .iter()
            .map(|i| format!("x{}", i + 1))
            .collect::<Vec<_>>()
    );
    report_degradations(&degradations);
    Ok(())
}

fn reduce(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("reduce takes exactly one PLA file".into());
    };
    let mut cf = load_cf(path, flags.sift)?;
    let before = (cf.max_width(), cf.node_count());
    let mut degradations = DegradationReport::new();
    if let Some(budget) = flags.budget() {
        cf.manager_mut().set_budget(budget);
    }
    match flags.method.as_str() {
        "alg31" => {
            if let Err(cause) = cf.try_reduce_alg31() {
                degradations.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
            }
        }
        "alg33" => {
            cf.reduce_alg33_governed(&Alg33Options::default(), &mut degradations);
        }
        "fixpoint" => {
            cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut degradations);
        }
        other => return Err(format!("unknown --method {other}")),
    }
    let _ = cf.manager_mut().take_budget();
    report_degradations(&degradations);
    println!(
        "width {} -> {}, nodes {} -> {}",
        before.0,
        cf.max_width(),
        before.1,
        cf.node_count()
    );
    if let Some(out_path) = flags.output {
        let n = cf.layout().num_inputs();
        if n > 16 {
            return Err("-o only supported for functions with <= 16 inputs".into());
        }
        let m = cf.layout().num_outputs();
        let mut table = TruthTable::new(n, m);
        for r in 0..1usize << n {
            let input: Vec<bool> = (0..n).map(|i| r >> i & 1 == 1).collect();
            let word = cf.eval_completed(&input);
            for j in 0..m {
                table.set(r, j, Ternary::from_bool(word >> j & 1 == 1));
            }
        }
        std::fs::write(&out_path, write_pla(&table, None))
            .map_err(|e| format!("{out_path}: {e}"))?;
        println!("completed function written to {out_path}");
    }
    Ok(())
}

fn cascade(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("cascade takes exactly one PLA file".into());
    };
    let mut cf = load_cf(path, flags.sift)?;
    let mut degradations = DegradationReport::new();
    if let Some(budget) = flags.budget() {
        cf.manager_mut().set_budget(budget);
    }
    cf.reduce_alg33_governed(&Alg33Options::default(), &mut degradations);
    let options = CascadeOptions {
        max_cell_inputs: flags.max_in,
        max_cell_outputs: flags.max_out,
        ..CascadeOptions::default()
    };
    let result =
        synthesize_governed(&mut cf, &options, &mut degradations).map_err(|e| match e {
            SynthesisError::Budget(cause) => {
                report_degradations(&degradations);
                format!("budget exhausted during cascade synthesis: {cause}")
            }
            other => {
                format!(
                    "{other} — try larger cells or split the outputs (see bddcf_cascade::multi)"
                )
            }
        })?;
    let _ = cf.manager_mut().take_budget();
    report_degradations(&degradations);
    println!(
        "cascade: {} cells, {} LUT outputs, {} memory bits, max {} rails",
        result.num_cells(),
        result.lut_outputs(),
        result.memory_bits(),
        result.max_rails()
    );
    for (i, cell) in result.cells().iter().enumerate() {
        println!(
            "  cell {i}: {} rails + inputs {:?} -> {} rails + outputs {:?}",
            cell.rails_in(),
            cell.input_ids().iter().map(|i| i + 1).collect::<Vec<_>>(),
            cell.rails_out(),
            cell.output_ids().iter().map(|j| j + 1).collect::<Vec<_>>()
        );
    }
    if let Some(cas_path) = flags.save {
        std::fs::write(&cas_path, write_cascade(&result))
            .map_err(|e| format!("{cas_path}: {e}"))?;
        println!("cell tables written to {cas_path}");
    }
    if let Some(v_path) = flags.verilog {
        let module = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("cascade")
            .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
        std::fs::write(&v_path, cascade_to_verilog(&result, &module))
            .map_err(|e| format!("{v_path}: {e}"))?;
        println!("Verilog written to {v_path}");
    }
    Ok(())
}

fn sim(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path, bits] = flags.positional.as_slice() else {
        return Err("sim takes a .cas file and an input bit string".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cascade = read_cascade(&text).map_err(|e| format!("{path}: {e}"))?;
    if bits.len() != cascade.num_inputs() {
        return Err(format!(
            "expected {} input bits, got {}",
            cascade.num_inputs(),
            bits.len()
        ));
    }
    let input: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid input bit {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    let word = cascade.eval(&input);
    let rendered: String = (0..cascade.num_outputs())
        .map(|j| if word >> j & 1 == 1 { '1' } else { '0' })
        .collect();
    println!("{rendered}");
    Ok(())
}

fn select_suite(flags: &Flags) -> Result<Vec<bddcf::funcs::BenchmarkEntry>, String> {
    let suite = match flags.suite.as_str() {
        "small" => bddcf::funcs::small_benchmarks(),
        "table4" => bddcf::funcs::table4_benchmarks(),
        other => return Err(format!("unknown --suite {other} (small | table4)")),
    };
    let selected: Vec<_> = suite
        .into_iter()
        .filter(|entry| {
            flags.positional.is_empty()
                || flags
                    .positional
                    .iter()
                    .any(|needle| entry.label.to_lowercase().contains(&needle.to_lowercase()))
        })
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "no benchmark in the {:?} suite matches {:?}",
            flags.suite, flags.positional
        ));
    }
    Ok(selected)
}

fn check(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let selected = select_suite(&flags)?;
    let options = bddcf::check::CheckOptions {
        samples: flags.samples,
        max_iterations: flags.max_iter,
        ..bddcf::check::CheckOptions::default()
    };
    let mut failures = 0usize;
    for entry in &selected {
        let result = bddcf::check::check_benchmark(entry.benchmark.as_ref(), &options);
        let verdict = if result.report.is_clean() {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{verdict:4} {:<28} width {} -> {}, {} cascade(s), {} cell(s)",
            entry.label,
            result.max_width.0,
            result.max_width.1,
            result.num_cascades,
            result.num_cells
        );
        if !result.report.is_clean() {
            failures += 1;
            for finding in result.report.findings() {
                println!("     {finding}");
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} benchmark(s) violated pipeline invariants",
            selected.len()
        ));
    }
    println!(
        "all {} benchmark(s) pass every invariant layer",
        selected.len()
    );
    Ok(())
}

fn inject(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let selected = select_suite(&flags)?;
    let options = bddcf::check::InjectionOptions {
        seed: flags.seed,
        points: flags.points,
        max_iterations: flags.max_iter,
        samples: flags.samples.min(64),
        ..bddcf::check::InjectionOptions::default()
    };
    let mut failures = 0usize;
    for entry in &selected {
        let outcome = bddcf::check::run_injection(entry.benchmark.as_ref(), &options);
        println!("{}", outcome.summary());
        if !outcome.is_clean() {
            failures += 1;
            for finding in outcome.report.findings() {
                println!("     {finding}");
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} benchmark(s) violated an invariant under fault injection",
            selected.len()
        ));
    }
    println!(
        "all {} benchmark(s) survive {} fault injection(s) each (seed {:#x})",
        selected.len(),
        flags.points,
        flags.seed
    );
    Ok(())
}
