//! `bddcf` — command-line front end.
//!
//! ```text
//! bddcf stats   <file.pla> [--sift N]
//!     BDD_for_CF widths/nodes for DC=0, DC=1, ISF, Alg 3.1, Alg 3.3.
//!
//! bddcf reduce  <file.pla> [--method alg31|alg33|fixpoint] [--sift N] [-o out.pla]
//!     Reduce and (for ≤ 16 inputs) write the completed function as a PLA.
//!
//! bddcf cascade <file.pla> [--max-in K] [--max-out L] [--sift N]
//!               [--verilog out.v] [--save out.cas]
//!     Synthesize an LUT cascade; optionally emit Verilog and/or save the
//!     cell tables.
//!
//! bddcf sim <file.cas> <bits>
//!     Evaluate a saved cascade on an input bit string (input 0 first).
//!
//! bddcf check [label-substring...] [--suite small|table4] [--samples N]
//!             [--max-iter N]
//!     Run the bddcf-check invariant layers (manager integrity, CF lints,
//!     refinement oracle, cascade lints) over registry benchmarks; exits
//!     nonzero if any layer reports a finding.
//!
//! bddcf lint [label-substring...] [--suite small|table4] [--max-iter N]
//!     Static translation validation of emitted artifacts: synthesize each
//!     benchmark, emit Verilog and cascade text, parse them back, run the
//!     netlist lints (NL001–NL009), require a byte-faithful re-emission,
//!     and prove χ_netlist ⇒ χ_spec on the BDDs. Findings are printed
//!     machine-readably as `file:line: [ID] message`; exits nonzero on any.
//!
//! bddcf inject [label-substring...] [--suite small|table4] [--seed N]
//!              [--points N] [--max-iter N] [--samples N]
//!     Seeded fault injection: exhaust node/step budgets and fire
//!     cancellations at random points of the governed pipeline, auditing
//!     every survivor; exits nonzero on any invariant violation.
//!
//! bddcf resume <file.bddcfck> [--max-iter N] [--max-in K] [--max-out L]
//!              [--save out.cas] [--verilog out.v]
//!     Reconstruct a reduction from a crash-safe checkpoint and continue it
//!     from the recorded level; optionally synthesize the cascade.
//!
//! bddcf crashtest [label-substring...] [--suite small|table4] [--seed N]
//!                 [--kill-points N] [--max-iter N] [--dir D] [--panic-probe]
//!     Crash-recovery audit: kill the pipeline at seeded step counts,
//!     resume from the latest checkpoint, and require the recovered cascade
//!     to be byte-identical to an uninterrupted run; exits nonzero on any
//!     divergence, refinement violation, or quarantined benchmark.
//!
//! bddcf bench [--suite small|table4|table5[,…]] [--json] [-o report.json]
//!             [--diff BASELINE.json] [--tolerance FRACTION]
//!     Run the measurement suites (wall clock, peak nodes, probe lengths,
//!     cache hit rates per registry benchmark) and emit the figures as
//!     deterministic JSON; `--diff` compares the run against a committed
//!     baseline with calibration-normalized wall clocks and exits 1 on a
//!     regression beyond the tolerance (default 0.20).
//!
//! bddcf serve [--addr A] [--workers N] [--queue-cap N]
//!             [--max-inflight-nodes N] [--spool D] [--cache-cap N]
//!     Run the fault-tolerant synthesis daemon (length-prefixed JSON over
//!     TCP; see bddcf_serve::protocol). Prints `listening on ADDR` once
//!     bound and serves until a protocol drain/checkpoint shutdown.
//!
//! bddcf loadtest [--requests N] [--clients N] [--seed N] [--dir D]
//!                [--no-kill] [--in-process]
//!     Chaos/load harness: drives a spawned `bddcf serve` child with a
//!     seeded mix of valid, duplicate, malformed, oversized, deadline-zero,
//!     and deliberately panicking requests, SIGKILLs it mid-batch, restarts
//!     it on the same spool, and exits nonzero unless no accepted request
//!     was lost and every artifact is byte-identical and passes the audit
//!     stack.
//!
//! bddcf diskchaos [--seed N] [--points N] [--requests N] [--drop-dir-sync]
//!     Hostile-disk harness: records every storage event of a checkpointed
//!     reduction and a spooled serve session on a fault-injecting VFS, then
//!     sweeps power-loss crash prefixes (fsync-lies model) and seeded
//!     ENOSPC/EIO/short-write faults, asserting recovery never panics,
//!     resumes byte-identically, loses no accepted-and-replied request, and
//!     every surviving artifact passes the audit stack. --drop-dir-sync is
//!     the negative control: directory fsyncs silently lie and the sweep
//!     must fail.
//! ```
//!
//! `check`, `inject`, and `crashtest` run each benchmark inside a panic
//! quarantine: a panicking benchmark poisons only its own run, the batch
//! continues, and the quarantined entries are listed (with the panic
//! payload and the last good checkpoint, when one exists) at the end.
//!
//! `stats`, `reduce`, and `cascade` accept resource-governor flags
//! `--node-limit N`, `--step-limit N`, and `--time-budget SECONDS`. Under a
//! budget the reductions *degrade gracefully*: steps that do not fit are
//! downgraded or skipped (reported on stderr) and the result is a less
//! reduced but still valid BDD_for_CF; only construction or synthesis that
//! cannot complete at all exits nonzero, with a typed error and no panic.
//!
//! PLA semantics follow `bddcf_io::pla` (`fr`-type: uncovered minterms are
//! don't cares; add `.type fd` to the file for unlisted-means-0).

#![forbid(unsafe_code)]

use bddcf::bdd::{Budget, ReorderCost};
use bddcf::cascade::{synthesize_governed, CascadeOptions, SynthesisError};
use bddcf::core::degrade::{DegradationReport, DegradeAction, Phase};
use bddcf::core::{Alg33Options, Cf};
use bddcf::io::{emit_cascade, emit_verilog, parse_pla, read_cascade, write_pla};
use bddcf::logic::{Ternary, TruthTable};
use std::process::ExitCode;
use std::time::Duration;

/// What a verification subcommand concluded. The distinction drives the
/// exit code: findings are a *successful* run that discovered problems
/// (exit 1), unlike usage or internal errors (exit 2).
enum Outcome {
    /// Everything checked out.
    Clean,
    /// The run completed and surfaced findings (already printed).
    Findings,
}

/// Why a subcommand failed. The distinction drives the exit code: a run
/// that its resource budget (or deadline) cut short is a *governed*
/// failure (exit 3) a caller can respond to by raising the budget, unlike
/// usage or internal errors (exit 2).
enum CliError {
    /// Bad invocation or an internal failure (exit 2).
    Usage(String),
    /// The run's budget or deadline was exhausted before completion, or
    /// `--require-complete` rejected a degraded result (exit 3).
    Budget(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Findings) => ExitCode::FAILURE,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("run `bddcf help` for usage");
            ExitCode::from(2)
        }
        Err(CliError::Budget(message)) => {
            eprintln!("budget exhausted: {message}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<Outcome, CliError> {
    let Some(command) = args.first() else {
        return Err("missing subcommand (stats | reduce | cascade | help)"
            .to_string()
            .into());
    };
    let clean = |()| Outcome::Clean;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{}", USAGE);
            Ok(Outcome::Clean)
        }
        "stats" => stats(&args[1..]).map(clean).map_err(Into::into),
        "reduce" => reduce(&args[1..]).map(clean),
        "cascade" => cascade(&args[1..]).map(clean),
        "sim" => sim(&args[1..]).map(clean).map_err(Into::into),
        "check" => check(&args[1..]).map_err(Into::into),
        "lint" => lint(&args[1..]).map_err(Into::into),
        "inject" => inject(&args[1..]).map_err(Into::into),
        "resume" => resume(&args[1..]).map(clean),
        "crashtest" => crashtest(&args[1..]).map_err(Into::into),
        "bench" => bench(&args[1..]).map_err(Into::into),
        "serve" => serve(&args[1..]).map(clean).map_err(Into::into),
        "loadtest" => loadtest(&args[1..]).map_err(Into::into),
        "diskchaos" => diskchaos(&args[1..]).map_err(Into::into),
        other => Err(format!("unknown subcommand {other:?}").into()),
    }
}

const USAGE: &str = "\
bddcf — BDD_for_CF width reduction and LUT cascade synthesis

USAGE:
  bddcf stats   <file.pla> [--sift N]
  bddcf reduce  <file.pla> [--method alg31|alg33|fixpoint] [--sift N] [-o out.pla]
  bddcf cascade <file.pla> [--max-in K] [--max-out L] [--sift N]
                [--verilog out.v] [--save out.cas]
  bddcf sim <file.cas> <input-bits>
  bddcf check [label-substring...] [--suite small|table4] [--samples N]
              [--max-iter N]
  bddcf lint  [label-substring...] [--suite small|table4] [--max-iter N]
  bddcf inject [label-substring...] [--suite small|table4] [--seed N]
               [--points N] [--max-iter N] [--samples N]
  bddcf resume <file.bddcfck> [--max-iter N] [--max-in K] [--max-out L]
               [--save out.cas] [--verilog out.v]
  bddcf crashtest [label-substring...] [--suite small|table4] [--seed N]
                  [--kill-points N] [--max-iter N] [--dir D] [--panic-probe]
  bddcf bench [--suite small|table4|table5[,…]] [--json] [-o report.json]
              [--diff BASELINE.json] [--tolerance FRACTION]
  bddcf serve [--addr A] [--workers N] [--queue-cap N]
              [--max-inflight-nodes N] [--spool D] [--cache-cap N]
  bddcf loadtest [--requests N] [--clients N] [--seed N] [--dir D]
                 [--no-kill] [--in-process]
  bddcf diskchaos [--seed N] [--points N] [--requests N] [--drop-dir-sync]

RESOURCE GOVERNOR (stats | reduce | cascade):
  --node-limit N       cap the BDD arena at N nodes
  --step-limit N       cap charged operation steps at N
  --time-budget SECS   wall-clock allowance (fractional seconds ok)
  --require-complete   (reduce | cascade) treat any budget downgrade as a
                       failure: exit 3 instead of printing a degraded result
  Reductions degrade gracefully under a budget (downgrades reported on
  stderr, result stays valid); hard exhaustion exits 3, no panic.

BENCHMARKING (bench):
  Runs the measurement suites (default table4,table5; --suite accepts a
  comma-separated list) and prints a human summary, or with --json the
  deterministic bddcf-bench-v1 report (to -o FILE when given). Every
  report embeds a machine-calibration figure; --diff BASELINE.json
  compares calibration-normalized wall clocks and exits 1 when a shared
  suite regressed beyond --tolerance (default 0.20).

SERVING (serve | loadtest):
  serve binds a TCP daemon speaking u32-length-prefixed JSON frames and
  prints `listening on ADDR`; shut it down over the protocol with a
  `shutdown` request (`drain` finishes the queue, `checkpoint` parks
  in-flight jobs for a byte-identical resume on restart). loadtest spawns
  `bddcf serve` as a child on a shared spool, fires a seeded request mix,
  SIGKILLs and restarts the daemon mid-batch, and audits that no accepted
  request was lost.

STORAGE FAULTS (diskchaos):
  Runs checkpointed reductions and an in-process spooled daemon over a
  fault-injecting VFS, then replays power-loss crash states at --points
  storage-event prefixes per phase (0 = every event) plus seeded
  ENOSPC/EIO/short-write faults. Exits 1 on any recovery-contract
  violation. --drop-dir-sync makes every directory fsync a silent lie —
  the negative control proving the harness checks rename durability.

CRASH SAFETY:
  reduce --method fixpoint --checkpoint-dir D
      write an atomic checkpoint into D at every Algorithm 3.3 level
      boundary (resume later with `bddcf resume D/ckpt-NNNNNN.bddcfck`)
  check | inject | crashtest --panic-probe
      append a deliberately panicking benchmark to prove quarantine
  check | lint | inject | crashtest --finding-probe
      append a benchmark that violates Definition 2.4 to prove the
      findings exit path (exit 1)

EXIT CODES:
  0  clean                1  findings reported
  2  usage or internal    3  budget/deadline exhausted before completion
";

struct Flags {
    positional: Vec<String>,
    sift: usize,
    method: String,
    output: Option<String>,
    max_in: usize,
    max_out: usize,
    verilog: Option<String>,
    save: Option<String>,
    suite: String,
    samples: u64,
    max_iter: usize,
    node_limit: Option<usize>,
    step_limit: Option<u64>,
    time_budget: Option<f64>,
    seed: u64,
    points: usize,
    checkpoint_dir: Option<String>,
    kill_points: usize,
    dir: Option<String>,
    panic_probe: bool,
    finding_probe: bool,
    require_complete: bool,
    addr: String,
    workers: usize,
    queue_cap: usize,
    max_inflight_nodes: Option<usize>,
    spool: Option<String>,
    cache_cap: usize,
    requests: usize,
    clients: usize,
    no_kill: bool,
    in_process: bool,
    drop_dir_sync: bool,
    suite_given: bool,
    requests_given: bool,
    points_given: bool,
    json: bool,
    diff: Option<String>,
    tolerance: f64,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        sift: 1,
        method: "alg33".into(),
        output: None,
        max_in: 12,
        max_out: 10,
        verilog: None,
        save: None,
        suite: "small".into(),
        samples: 128,
        max_iter: 4,
        node_limit: None,
        step_limit: None,
        time_budget: None,
        seed: 0xb0d0_cf5e,
        points: 100,
        checkpoint_dir: None,
        kill_points: 12,
        dir: None,
        panic_probe: false,
        finding_probe: false,
        require_complete: false,
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 16,
        max_inflight_nodes: None,
        spool: None,
        cache_cap: 64,
        requests: 200,
        clients: 4,
        no_kill: false,
        in_process: false,
        drop_dir_sync: false,
        suite_given: false,
        requests_given: false,
        points_given: false,
        json: false,
        diff: None,
        tolerance: 0.20,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--sift" => {
                flags.sift = grab("--sift")?
                    .parse()
                    .map_err(|e| format!("--sift: {e}"))?
            }
            "--method" => flags.method = grab("--method")?,
            "-o" | "--output" => flags.output = Some(grab("-o")?),
            "--max-in" => {
                flags.max_in = grab("--max-in")?
                    .parse()
                    .map_err(|e| format!("--max-in: {e}"))?
            }
            "--max-out" => {
                flags.max_out = grab("--max-out")?
                    .parse()
                    .map_err(|e| format!("--max-out: {e}"))?
            }
            "--verilog" => flags.verilog = Some(grab("--verilog")?),
            "--save" => flags.save = Some(grab("--save")?),
            "--suite" => {
                flags.suite = grab("--suite")?;
                flags.suite_given = true;
            }
            "--json" => flags.json = true,
            "--diff" => flags.diff = Some(grab("--diff")?),
            "--tolerance" => {
                let t: f64 = grab("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err("--tolerance needs a non-negative fraction".into());
                }
                flags.tolerance = t;
            }
            "--samples" => {
                flags.samples = grab("--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?
            }
            "--max-iter" => {
                flags.max_iter = grab("--max-iter")?
                    .parse()
                    .map_err(|e| format!("--max-iter: {e}"))?
            }
            "--node-limit" => {
                flags.node_limit = Some(
                    grab("--node-limit")?
                        .parse()
                        .map_err(|e| format!("--node-limit: {e}"))?,
                )
            }
            "--step-limit" => {
                flags.step_limit = Some(
                    grab("--step-limit")?
                        .parse()
                        .map_err(|e| format!("--step-limit: {e}"))?,
                )
            }
            "--time-budget" => {
                let secs: f64 = grab("--time-budget")?
                    .parse()
                    .map_err(|e| format!("--time-budget: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--time-budget needs a positive number of seconds".into());
                }
                flags.time_budget = Some(secs);
            }
            "--seed" => {
                flags.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--points" => {
                flags.points = grab("--points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?;
                flags.points_given = true;
            }
            "--checkpoint-dir" => flags.checkpoint_dir = Some(grab("--checkpoint-dir")?),
            "--kill-points" => {
                flags.kill_points = grab("--kill-points")?
                    .parse()
                    .map_err(|e| format!("--kill-points: {e}"))?
            }
            "--dir" => flags.dir = Some(grab("--dir")?),
            "--panic-probe" => flags.panic_probe = true,
            "--finding-probe" => flags.finding_probe = true,
            "--require-complete" => flags.require_complete = true,
            "--addr" => flags.addr = grab("--addr")?,
            "--workers" => {
                flags.workers = grab("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-cap" => {
                flags.queue_cap = grab("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--max-inflight-nodes" => {
                flags.max_inflight_nodes = Some(
                    grab("--max-inflight-nodes")?
                        .parse()
                        .map_err(|e| format!("--max-inflight-nodes: {e}"))?,
                )
            }
            "--spool" => flags.spool = Some(grab("--spool")?),
            "--cache-cap" => {
                flags.cache_cap = grab("--cache-cap")?
                    .parse()
                    .map_err(|e| format!("--cache-cap: {e}"))?
            }
            "--requests" => {
                flags.requests = grab("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
                flags.requests_given = true;
            }
            "--clients" => {
                flags.clients = grab("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--no-kill" => flags.no_kill = true,
            "--in-process" => flags.in_process = true,
            "--drop-dir-sync" => flags.drop_dir_sync = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

impl Flags {
    /// The resource budget requested on the command line, if any.
    fn budget(&self) -> Option<Budget> {
        if self.node_limit.is_none() && self.step_limit.is_none() && self.time_budget.is_none() {
            return None;
        }
        let mut budget = Budget::default();
        if let Some(n) = self.node_limit {
            budget = budget.with_node_limit(n);
        }
        if let Some(s) = self.step_limit {
            budget = budget.with_step_limit(s);
        }
        if let Some(secs) = self.time_budget {
            budget = budget.with_time_budget(Duration::from_secs_f64(secs));
        }
        Some(budget)
    }
}

/// Prints a non-empty degradation report to stderr: the result the command
/// goes on to print is less reduced than an unbudgeted run's, but valid.
fn report_degradations(report: &DegradationReport) {
    if report.is_clean() {
        return;
    }
    eprintln!(
        "budget pressure: {} downgrade(s); the result is less reduced but still valid:",
        report.len()
    );
    for line in report.render().lines() {
        eprintln!("  {line}");
    }
}

/// [`emit_verilog`] with the typed emission error folded into `io::Error`,
/// so it can stream through [`write_file_with`]. An invalid module name is
/// reported as `InvalidInput` instead of a panic.
fn emit_verilog_io<W: std::io::Write>(
    cascade: &bddcf::cascade::Cascade,
    module_name: &str,
    w: &mut W,
) -> std::io::Result<()> {
    emit_verilog(cascade, module_name, w).map_err(|e| match e {
        bddcf::io::VerilogEmitError::Io(e) => e,
        other => std::io::Error::new(std::io::ErrorKind::InvalidInput, other.to_string()),
    })
}

/// Streams `emit` into `path` through a `BufWriter`, so writer failures
/// (disk full, permissions) surface as errors instead of being dropped
/// with a partially written file mistaken for a complete one.
fn write_file_with(
    path: &str,
    emit: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> Result<(), String> {
    use std::io::Write as _;
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    emit(&mut w)
        .and_then(|()| w.flush())
        .map_err(|e| format!("{path}: {e}"))
}

fn load_cf(path: &str, sift_passes: usize) -> Result<Cf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pla = parse_pla(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut cf = pla.to_cf().map_err(|e| format!("{path}: {e}"))?;
    if sift_passes > 0 {
        cf.optimize_order(ReorderCost::SumOfWidths, sift_passes);
    }
    Ok(cf)
}

fn stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("stats takes exactly one PLA file".into());
    };
    let cf = load_cf(path, flags.sift)?;
    println!(
        "{}: {} inputs, {} outputs",
        path,
        cf.layout().num_inputs(),
        cf.layout().num_outputs()
    );
    println!(
        "ISF:      width {:>6}  nodes {:>7}",
        cf.max_width(),
        cf.node_count()
    );
    let budget = flags.budget();
    let mut degradations = DegradationReport::new();
    let mut a31 = cf.clone();
    if let Some(b) = budget.clone() {
        a31.manager_mut().set_budget(b);
    }
    match a31.try_reduce_alg31() {
        Ok(s31) => println!(
            "Alg 3.1:  width {:>6}  nodes {:>7}  ({} merges)",
            s31.max_width_after, s31.nodes_after, s31.merges
        ),
        Err(cause) => {
            degradations.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
            println!("Alg 3.1:  (skipped: {cause})");
        }
    }
    let mut a33 = cf.clone();
    if let Some(b) = budget.clone() {
        a33.manager_mut().set_budget(b);
    }
    let s33 = a33.reduce_alg33_governed(&Alg33Options::default(), &mut degradations);
    println!(
        "Alg 3.3:  width {:>6}  nodes {:>7}  ({} columns merged)",
        s33.max_width_after, s33.nodes_after, s33.columns_merged
    );
    let mut sup = cf;
    if let Some(b) = budget {
        sup.manager_mut().set_budget(b);
    }
    let removed = sup.reduce_support_variables_governed(&mut degradations);
    println!(
        "§3.3:     {} redundant input(s) removable: {:?}",
        removed.len(),
        removed
            .iter()
            .map(|i| format!("x{}", i + 1))
            .collect::<Vec<_>>()
    );
    print_engine_stats(&a33.manager().engine_stats());
    report_degradations(&degradations);
    Ok(())
}

/// Engine-health block of `bddcf stats`: the counters of the manager that
/// ran the load + sift + Algorithm 3.3 line (the representative path).
fn print_engine_stats(stats: &bddcf::bdd::EngineStats) {
    let cache = stats.cache_total();
    let lookups = stats.unique_lookups.max(1);
    let cache_lookups = (cache.hits + cache.misses).max(1);
    println!(
        "engine:   peak {} nodes ({} KiB arena)",
        stats.peak_nodes,
        stats.peak_arena_bytes / 1024
    );
    println!(
        "          unique table {}/{} live/buckets, {:.2} mean probes/lookup",
        stats.unique_len,
        stats.unique_capacity,
        stats.unique_probes as f64 / lookups as f64
    );
    println!(
        "          op caches {:.1}% hit ({} hits, {} misses, {} evictions)",
        100.0 * cache.hits as f64 / cache_lookups as f64,
        cache.hits,
        cache.misses,
        cache.evictions
    );
    println!(
        "          gc {} run(s), {:.3} ms paused",
        stats.gc_runs,
        stats.gc_pause_ns as f64 / 1e6
    );
}

fn reduce(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("reduce takes exactly one PLA file".to_string().into());
    };
    if flags.checkpoint_dir.is_some() && flags.method != "fixpoint" {
        return Err("--checkpoint-dir requires --method fixpoint"
            .to_string()
            .into());
    }
    let mut cf = load_cf(path, flags.sift)?;
    let before = (cf.max_width(), cf.node_count());
    let mut degradations = DegradationReport::new();
    if let Some(budget) = flags.budget() {
        cf.manager_mut().set_budget(budget);
    }
    match flags.method.as_str() {
        "alg31" => {
            if let Err(cause) = cf.try_reduce_alg31() {
                degradations.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
            }
        }
        "alg33" => {
            cf.reduce_alg33_governed(&Alg33Options::default(), &mut degradations);
        }
        "fixpoint" => {
            if let Some(dir) = &flags.checkpoint_dir {
                let mut ck = bddcf::core::Checkpointer::new(dir)
                    .map_err(|e| format!("--checkpoint-dir {dir}: {e}"))?;
                cf.reduce_to_fixpoint_checkpointed(
                    &Alg33Options::default(),
                    flags.max_iter,
                    &mut degradations,
                    &mut ck,
                    false,
                )
                .map_err(|e| format!("checkpointing into {dir} failed: {e}"))?;
                if let Some(path) = ck.last_path() {
                    eprintln!("last checkpoint: {}", path.display());
                }
            } else {
                cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut degradations);
            }
        }
        other => return Err(format!("unknown --method {other}").into()),
    }
    let _ = cf.manager_mut().take_budget();
    report_degradations(&degradations);
    if flags.require_complete && !degradations.is_clean() {
        return Err(CliError::Budget(format!(
            "reduction downgraded {} step(s) under the budget and \
             --require-complete was set",
            degradations.len()
        )));
    }
    println!(
        "width {} -> {}, nodes {} -> {}",
        before.0,
        cf.max_width(),
        before.1,
        cf.node_count()
    );
    if let Some(out_path) = flags.output {
        let n = cf.layout().num_inputs();
        if n > 16 {
            return Err("-o only supported for functions with <= 16 inputs"
                .to_string()
                .into());
        }
        let m = cf.layout().num_outputs();
        let mut table = TruthTable::new(n, m);
        for r in 0..1usize << n {
            let input: Vec<bool> = (0..n).map(|i| r >> i & 1 == 1).collect();
            let word = cf.eval_completed(&input);
            for j in 0..m {
                table.set(r, j, Ternary::from_bool(word >> j & 1 == 1));
            }
        }
        std::fs::write(&out_path, write_pla(&table, None))
            .map_err(|e| format!("{out_path}: {e}"))?;
        println!("completed function written to {out_path}");
    }
    Ok(())
}

fn cascade(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("cascade takes exactly one PLA file".to_string().into());
    };
    let mut cf = load_cf(path, flags.sift)?;
    let mut degradations = DegradationReport::new();
    if let Some(budget) = flags.budget() {
        cf.manager_mut().set_budget(budget);
    }
    cf.reduce_alg33_governed(&Alg33Options::default(), &mut degradations);
    let options = CascadeOptions {
        max_cell_inputs: flags.max_in,
        max_cell_outputs: flags.max_out,
        ..CascadeOptions::default()
    };
    let result =
        synthesize_governed(&mut cf, &options, &mut degradations).map_err(|e| match e {
            SynthesisError::Budget(cause) => {
                report_degradations(&degradations);
                CliError::Budget(format!("cascade synthesis could not complete: {cause}"))
            }
            other => CliError::Usage(format!(
                "{other} — try larger cells or split the outputs (see bddcf_cascade::multi)"
            )),
        })?;
    let _ = cf.manager_mut().take_budget();
    report_degradations(&degradations);
    if flags.require_complete && !degradations.is_clean() {
        return Err(CliError::Budget(format!(
            "synthesis downgraded {} step(s) under the budget and \
             --require-complete was set",
            degradations.len()
        )));
    }
    println!(
        "cascade: {} cells, {} LUT outputs, {} memory bits, max {} rails",
        result.num_cells(),
        result.lut_outputs(),
        result.memory_bits(),
        result.max_rails()
    );
    for (i, cell) in result.cells().iter().enumerate() {
        println!(
            "  cell {i}: {} rails + inputs {:?} -> {} rails + outputs {:?}",
            cell.rails_in(),
            cell.input_ids().iter().map(|i| i + 1).collect::<Vec<_>>(),
            cell.rails_out(),
            cell.output_ids().iter().map(|j| j + 1).collect::<Vec<_>>()
        );
    }
    if let Some(cas_path) = flags.save {
        write_file_with(&cas_path, |w| emit_cascade(&result, w))?;
        println!("cell tables written to {cas_path}");
    }
    if let Some(v_path) = flags.verilog {
        let mut module = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("cascade")
            .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
        if !bddcf::io::is_valid_module_name(&module) {
            module = format!("m_{module}");
        }
        write_file_with(&v_path, |w| emit_verilog_io(&result, &module, w))?;
        println!("Verilog written to {v_path}");
    }
    Ok(())
}

fn sim(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path, bits] = flags.positional.as_slice() else {
        return Err("sim takes a .cas file and an input bit string".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cascade = read_cascade(&text).map_err(|e| format!("{path}: {e}"))?;
    if bits.len() != cascade.num_inputs() {
        return Err(format!(
            "expected {} input bits, got {}",
            cascade.num_inputs(),
            bits.len()
        ));
    }
    let input: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid input bit {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    let word = cascade.eval(&input);
    let rendered: String = (0..cascade.num_outputs())
        .map(|j| if word >> j & 1 == 1 { '1' } else { '0' })
        .collect();
    println!("{rendered}");
    Ok(())
}

fn select_suite(flags: &Flags) -> Result<Vec<bddcf::funcs::BenchmarkEntry>, String> {
    let suite = match flags.suite.as_str() {
        "small" => bddcf::funcs::small_benchmarks(),
        "table4" => bddcf::funcs::table4_benchmarks(),
        other => return Err(format!("unknown --suite {other} (small | table4)")),
    };
    let selected: Vec<_> = suite
        .into_iter()
        .filter(|entry| {
            flags.positional.is_empty()
                || flags
                    .positional
                    .iter()
                    .any(|needle| entry.label.to_lowercase().contains(&needle.to_lowercase()))
        })
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "no benchmark in the {:?} suite matches {:?}",
            flags.suite, flags.positional
        ));
    }
    Ok(selected)
}

/// The batch entries a `check`/`inject`/`crashtest` run iterates: the
/// selected suite, plus the deliberately panicking probe when requested.
fn batch_entries<'a>(
    selected: &'a [bddcf::funcs::BenchmarkEntry],
    flags: &Flags,
    panic_probe: &'a bddcf::check::PanicProbe,
    finding_probe: &'a bddcf::check::FindingProbe,
) -> Vec<(&'a str, &'a dyn bddcf::funcs::Benchmark)> {
    let mut entries: Vec<(&str, &dyn bddcf::funcs::Benchmark)> = selected
        .iter()
        .map(|entry| (entry.label, entry.benchmark.as_ref()))
        .collect();
    if flags.panic_probe {
        entries.push(("panic probe", panic_probe));
    }
    if flags.finding_probe {
        entries.push(("finding probe", finding_probe));
    }
    entries
}

/// Prints the quarantine listing and folds it into the batch verdict.
fn report_quarantines(quarantined: &[bddcf::check::Quarantine]) {
    for q in quarantined {
        println!("QUAR {q}");
    }
}

fn check(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    let selected = select_suite(&flags)?;
    let options = bddcf::check::CheckOptions {
        samples: flags.samples,
        max_iterations: flags.max_iter,
        ..bddcf::check::CheckOptions::default()
    };
    let panic_probe = bddcf::check::PanicProbe;
    let finding_probe = bddcf::check::FindingProbe;
    let mut failures = 0usize;
    let mut quarantined = Vec::new();
    bddcf::check::with_quiet_panics(|| {
        for (label, benchmark) in batch_entries(&selected, &flags, &panic_probe, &finding_probe) {
            let result = match bddcf::check::run_quarantined(label, || {
                bddcf::check::check_benchmark(benchmark, &options)
            }) {
                Ok(result) => result,
                Err(q) => {
                    quarantined.push(q);
                    continue;
                }
            };
            let verdict = if result.report.is_clean() {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "{verdict:4} {label:<28} width {} -> {}, {} cascade(s), {} cell(s)",
                result.max_width.0, result.max_width.1, result.num_cascades, result.num_cells
            );
            if !result.report.is_clean() {
                failures += 1;
                for finding in result.report.findings() {
                    println!("     {finding}");
                }
            }
        }
    });
    report_quarantines(&quarantined);
    let expected_quarantines = usize::from(flags.panic_probe);
    if failures > 0 || quarantined.len() != expected_quarantines {
        eprintln!(
            "{failures} benchmark(s) violated pipeline invariants, {} quarantined",
            quarantined.len()
        );
        return Ok(Outcome::Findings);
    }
    println!(
        "all {} benchmark(s) pass every invariant layer",
        selected.len()
    );
    Ok(Outcome::Clean)
}

fn lint(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    let selected = select_suite(&flags)?;
    let options = bddcf::check::LintOptions {
        max_iterations: flags.max_iter,
        ..bddcf::check::LintOptions::default()
    };
    let panic_probe = bddcf::check::PanicProbe;
    let finding_probe = bddcf::check::FindingProbe;
    let mut failures = 0usize;
    let mut quarantined = Vec::new();
    bddcf::check::with_quiet_panics(|| {
        for (label, benchmark) in batch_entries(&selected, &flags, &panic_probe, &finding_probe) {
            let result = match bddcf::check::run_quarantined(label, || {
                bddcf::check::lint_benchmark(benchmark, &options)
            }) {
                Ok(result) => result,
                Err(q) => {
                    quarantined.push(q);
                    continue;
                }
            };
            let verdict = if result.report.is_clean() {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "{verdict:4} {label:<28} {} artifact(s) analyzed",
                result.artifacts
            );
            if !result.report.is_clean() {
                failures += 1;
                for finding in result.report.findings() {
                    println!("{finding}");
                }
            }
        }
    });
    report_quarantines(&quarantined);
    let expected_quarantines = usize::from(flags.panic_probe);
    if failures > 0 || quarantined.len() != expected_quarantines {
        eprintln!(
            "{failures} benchmark(s) produced artifacts with lint findings, {} quarantined",
            quarantined.len()
        );
        return Ok(Outcome::Findings);
    }
    println!(
        "all {} benchmark(s) emit artifacts that parse back, round-trip \
         byte-faithfully, and refine their specifications",
        selected.len()
    );
    Ok(Outcome::Clean)
}

fn inject(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    let selected = select_suite(&flags)?;
    let options = bddcf::check::InjectionOptions {
        seed: flags.seed,
        points: flags.points,
        max_iterations: flags.max_iter,
        samples: flags.samples.min(64),
        ..bddcf::check::InjectionOptions::default()
    };
    let panic_probe = bddcf::check::PanicProbe;
    let finding_probe = bddcf::check::FindingProbe;
    let mut failures = 0usize;
    let mut quarantined = Vec::new();
    bddcf::check::with_quiet_panics(|| {
        for (label, benchmark) in batch_entries(&selected, &flags, &panic_probe, &finding_probe) {
            let outcome = match bddcf::check::run_quarantined(label, || {
                bddcf::check::run_injection(benchmark, &options)
            }) {
                Ok(outcome) => outcome,
                Err(q) => {
                    quarantined.push(q);
                    continue;
                }
            };
            println!("{}", outcome.summary());
            if !outcome.is_clean() {
                failures += 1;
                for finding in outcome.report.findings() {
                    println!("     {finding}");
                }
            }
        }
    });
    report_quarantines(&quarantined);
    let expected_quarantines = usize::from(flags.panic_probe);
    if failures > 0 || quarantined.len() != expected_quarantines {
        eprintln!(
            "{failures} benchmark(s) violated an invariant under fault injection, {} quarantined",
            quarantined.len()
        );
        return Ok(Outcome::Findings);
    }
    println!(
        "all {} benchmark(s) survive {} fault injection(s) each (seed {:#x})",
        selected.len(),
        flags.points,
        flags.seed
    );
    Ok(Outcome::Clean)
}

fn resume(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("resume takes exactly one checkpoint file"
            .to_string()
            .into());
    };
    let ckpt_path = std::path::Path::new(path);
    let loaded = bddcf::core::load_checkpoint(ckpt_path).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} inputs, {} outputs, width {}, {} nodes, at {}",
        loaded.cf.layout().num_inputs(),
        loaded.cf.layout().num_outputs(),
        loaded.cf.max_width(),
        loaded.cf.node_count(),
        loaded.progress
    );
    // Continue checkpointing in the directory the checkpoint came from,
    // after the sequence number it was part of.
    let dir = ckpt_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    let mut ck =
        bddcf::core::Checkpointer::new(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let (mut cf, mut report, stats) = loaded
        .resume(&Alg33Options::default(), flags.max_iter, &mut ck, false)
        .map_err(|e| format!("resume failed: {e}"))?;
    match stats {
        Some(stats) => println!(
            "resumed: {} iteration(s), width {} -> {}, nodes {} -> {}",
            stats.iterations, stats.max_width.0, stats.max_width.1, stats.nodes.0, stats.nodes.1
        ),
        None => println!(
            "reduction already complete: width {}, {} nodes",
            cf.max_width(),
            cf.node_count()
        ),
    }
    if let Some(last) = ck.last_path() {
        println!("last checkpoint: {}", last.display());
    }
    if flags.save.is_some() || flags.verilog.is_some() {
        let options = CascadeOptions {
            max_cell_inputs: flags.max_in,
            max_cell_outputs: flags.max_out,
            ..CascadeOptions::default()
        };
        let result = synthesize_governed(&mut cf, &options, &mut report).map_err(|e| match e {
            SynthesisError::Budget(cause) => CliError::Budget(format!(
                "cascade synthesis after resume could not complete: {cause}"
            )),
            other => CliError::Usage(format!("cascade synthesis after resume failed: {other}")),
        })?;
        println!(
            "cascade: {} cells, {} LUT outputs, {} memory bits",
            result.num_cells(),
            result.lut_outputs(),
            result.memory_bits()
        );
        if let Some(cas_path) = flags.save {
            write_file_with(&cas_path, |w| emit_cascade(&result, w))?;
            println!("cell tables written to {cas_path}");
        }
        if let Some(v_path) = flags.verilog {
            write_file_with(&v_path, |w| emit_verilog_io(&result, "resumed", w))?;
            println!("Verilog written to {v_path}");
        }
    }
    report_degradations(&report);
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    let defaults = bddcf::serve::ServerConfig::default();
    let config = bddcf::serve::ServerConfig {
        addr: flags.addr.clone(),
        workers: flags.workers.max(1),
        queue_capacity: flags.queue_cap.max(1),
        max_inflight_nodes: flags
            .max_inflight_nodes
            .unwrap_or(defaults.max_inflight_nodes),
        cache_capacity: flags.cache_cap,
        spool_dir: flags.spool.as_ref().map(std::path::PathBuf::from),
        ..defaults
    };
    // Probe jobs panic *by design* (quarantined per worker); the default
    // hook would spray backtraces over the daemon's log stream.
    bddcf::check::with_quiet_panics(|| -> Result<(), String> {
        let server = bddcf::serve::Server::start(config).map_err(|e| format!("serve: {e}"))?;
        // The chaos harness spawns this subcommand and parses exactly this
        // line off stdout; keep the prefix stable and flush past the pipe.
        println!("listening on {}", server.local_addr());
        use std::io::Write as _;
        std::io::stdout()
            .flush()
            .map_err(|e| format!("stdout: {e}"))?;
        let stats = server.wait();
        println!(
            "served {} connection(s): {} completed, {} degraded, {} failed, \
             {} panicked, {} deadline-shed, {} parked",
            stats.connections,
            stats.pool.completed,
            stats.pool.degraded,
            stats.pool.failed,
            stats.pool.panicked,
            stats.pool.shed_deadline,
            stats.pool.parked
        );
        println!(
            "rejections: {} queue-full, {} overloaded, {} draining, {} breaker; \
             cache: {} hit(s), {} invalidated; {} spool entr(ies) recovered",
            stats.pool.rejected_queue_full,
            stats.pool.rejected_overloaded,
            stats.pool.rejected_draining,
            stats.pool.rejected_breaker,
            stats.cache.hits,
            stats.cache.invalidated,
            stats.recovered
        );
        Ok(())
    })
}

fn loadtest(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err("loadtest takes no positional arguments".into());
    }
    let spool_dir = flags
        .dir
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("bddcf-loadtest-{}", std::process::id()))
        });
    let server_bin = if flags.in_process {
        None
    } else {
        Some(std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?)
    };
    let config = bddcf::serve::LoadTestConfig {
        requests: flags.requests,
        clients: flags.clients.max(1),
        seed: flags.seed,
        kill: !flags.no_kill,
        spool_dir,
        server_bin,
        workers: flags.workers.max(1),
        queue_capacity: flags.queue_cap.max(1),
    };
    let report = bddcf::serve::run_loadtest(&config)?;
    print!("{}", report.render());
    if report.passed() {
        Ok(Outcome::Clean)
    } else {
        Ok(Outcome::Findings)
    }
}

fn diskchaos(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err("diskchaos takes no positional arguments".into());
    }
    let config = bddcf::serve::DiskChaosConfig {
        seed: flags.seed,
        // inject's 100-point default would subsample; the contract is a
        // crash at *every* storage event unless the user narrows it.
        points: if flags.points_given { flags.points } else { 0 },
        // loadtest's 200-request default would make the sweep quadratic;
        // the harness needs only a handful of requests per session.
        requests: if flags.requests_given {
            flags.requests
        } else {
            6
        },
        drop_dir_sync: flags.drop_dir_sync,
    };
    let report = bddcf::serve::run_diskchaos(&config)?;
    print!("{}", report.render());
    if report.passed() {
        Ok(Outcome::Clean)
    } else {
        Ok(Outcome::Findings)
    }
}

fn crashtest(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    let selected = select_suite(&flags)?;
    let options = bddcf::check::CrashTestOptions {
        seed: flags.seed,
        kill_points: flags.kill_points,
        max_iterations: flags.max_iter,
        dir: flags
            .dir
            .as_ref()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("bddcf-crashtest")),
        ..bddcf::check::CrashTestOptions::default()
    };
    let panic_probe = bddcf::check::PanicProbe;
    let finding_probe = bddcf::check::FindingProbe;
    let mut failures = 0usize;
    let mut quarantined = Vec::new();
    bddcf::check::with_quiet_panics(|| {
        for (label, benchmark) in batch_entries(&selected, &flags, &panic_probe, &finding_probe) {
            let outcome = match bddcf::check::run_quarantined(label, || {
                bddcf::check::run_crashtest(benchmark, &options)
            }) {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(e)) => {
                    println!("FAIL {label}: {e}");
                    failures += 1;
                    continue;
                }
                Err(mut q) => {
                    // Attribute the last good checkpoint, if the crashed
                    // benchmark's baseline run got far enough to write one.
                    let slug: String = label
                        .chars()
                        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                        .collect();
                    q.last_checkpoint =
                        bddcf::core::latest_checkpoint(&options.dir.join(slug).join("baseline"))
                            .ok()
                            .flatten();
                    quarantined.push(q);
                    continue;
                }
            };
            println!("{}", outcome.summary());
            if !outcome.is_clean() {
                failures += 1;
                for finding in outcome.report.findings() {
                    println!("     {finding}");
                }
            }
        }
    });
    report_quarantines(&quarantined);
    let expected_quarantines = usize::from(flags.panic_probe);
    if failures > 0 || quarantined.len() != expected_quarantines {
        eprintln!(
            "{failures} benchmark(s) failed crash recovery, {} quarantined",
            quarantined.len()
        );
        return Ok(Outcome::Findings);
    }
    println!(
        "all {} benchmark(s) recover byte-identically from {} seeded kill(s) each (seed {:#x})",
        selected.len(),
        flags.kill_points,
        flags.seed
    );
    Ok(Outcome::Clean)
}

/// One suite's wall clock pulled out of a bddcf-bench-v1 report.
struct SuiteFigure {
    name: String,
    total_wall_ns: u64,
}

/// Parses a bddcf-bench-v1 JSON report down to the figures the diff
/// needs: the calibration time and each suite's total wall clock.
fn parse_bench_figures(text: &str, origin: &str) -> Result<(u64, Vec<SuiteFigure>), String> {
    let root = bddcf::serve::json::parse(text.as_bytes()).map_err(|e| format!("{origin}: {e}"))?;
    let format = root
        .get("format")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{origin}: missing \"format\""))?;
    if format != bddcf::bench::BENCH_FORMAT {
        return Err(format!(
            "{origin}: format {format:?}, expected {:?}",
            bddcf::bench::BENCH_FORMAT
        ));
    }
    let calibration_ns = root
        .get("calibration_ns")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("{origin}: missing \"calibration_ns\""))?;
    let mut suites = Vec::new();
    for suite in root
        .get("suites")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("{origin}: missing \"suites\""))?
    {
        let name = suite
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{origin}: suite without \"name\""))?;
        let total_wall_ns = suite
            .get("total_wall_ns")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("{origin}: suite {name:?} without \"total_wall_ns\""))?;
        suites.push(SuiteFigure {
            name: name.to_string(),
            total_wall_ns,
        });
    }
    Ok((calibration_ns, suites))
}

/// Compares a fresh report against a committed baseline. Wall clocks are
/// normalized by each report's own calibration figure, so the comparison
/// is per unit of this machine's speed; a suite counts as regressed when
/// its normalized wall clock exceeds the baseline's by more than
/// `tolerance` (a fraction, e.g. 0.20). Suites present in only one report
/// are reported but not failed, so baselines can grow suites over time.
fn diff_bench_reports(
    current_json: &str,
    baseline_json: &str,
    baseline_origin: &str,
    tolerance: f64,
) -> Result<Outcome, String> {
    let (current_cal, current) = parse_bench_figures(current_json, "current run")?;
    let (baseline_cal, baseline) = parse_bench_figures(baseline_json, baseline_origin)?;
    if current_cal == 0 || baseline_cal == 0 {
        return Err("calibration figure of zero; cannot normalize".into());
    }
    let mut regressions = 0usize;
    for base in &baseline {
        let Some(cur) = current.iter().find(|s| s.name == base.name) else {
            println!(
                "bench-diff: suite {:?} only in baseline (skipped)",
                base.name
            );
            continue;
        };
        // Wall clocks per unit of calibration work: dimensionless ratios
        // comparable across machines of different speeds.
        let cur_norm = cur.total_wall_ns as f64 / current_cal as f64;
        let base_norm = base.total_wall_ns as f64 / baseline_cal as f64;
        let ratio = cur_norm / base_norm;
        let verdict = if ratio > 1.0 + tolerance {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench-diff: {:<8} {:>7.3}x baseline (normalized; tolerance {:.0}%) {}",
            base.name,
            ratio,
            tolerance * 100.0,
            verdict
        );
    }
    for cur in &current {
        if !baseline.iter().any(|s| s.name == cur.name) {
            println!("bench-diff: suite {:?} not in baseline (skipped)", cur.name);
        }
    }
    if regressions > 0 {
        eprintln!("bench-diff: {regressions} suite(s) regressed beyond the tolerance");
        return Ok(Outcome::Findings);
    }
    Ok(Outcome::Clean)
}

fn bench(args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err(format!(
            "bench takes no positional arguments (got {:?})",
            flags.positional
        ));
    }
    let suites: Vec<String> = if flags.suite_given {
        flags.suite.split(',').map(str::to_string).collect()
    } else {
        vec!["table4".into(), "table5".into()]
    };
    let report = bddcf::bench::run_bench(&suites, true)?;
    let json = report.to_json();
    if let Some(path) = &flags.output {
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench report written to {path}");
    }
    if flags.json && flags.output.is_none() {
        print!("{json}");
    }
    if !flags.json {
        for suite in &report.suites {
            println!(
                "{:<8} {:>10.3} ms over {} benchmark(s)",
                suite.name,
                suite.total_wall_ns as f64 / 1e6,
                suite.entries.len()
            );
            for (label, payload) in &suite.quarantined {
                println!("  quarantined {label}: {payload}");
            }
        }
        println!(
            "calibration: {:.3} ms (fixed workload; used to normalize --diff)",
            report.calibration_ns as f64 / 1e6
        );
    }
    match &flags.diff {
        Some(path) => {
            let baseline =
                std::fs::read_to_string(path).map_err(|e| format!("--diff {path}: {e}"))?;
            diff_bench_reports(&json, &baseline, path, flags.tolerance)
        }
        None => Ok(Outcome::Clean),
    }
}
