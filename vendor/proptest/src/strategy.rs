//! Value-generation strategies: the mini equivalents of
//! `proptest::strategy` and `proptest::arbitrary`.

use crate::{DynStrategy, TestRng};
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the real `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and `f`
    /// turns a strategy for depth-`d` values into one for depth-`d+1`
    /// values. `depth` bounds the nesting; the size hints of the real API
    /// are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = f(current).boxed();
            current = OneOf::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheap cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng| self.new_value(rng)),
        }
    }
}

/// A type-erased, cloneable strategy handle.
pub struct BoxedStrategy<T> {
    gen: DynStrategy<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Uniform choice among several strategies of the same value type — the
/// engine behind [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A choice among `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-range strategy for primitives: the engine behind [`any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample(&mut rng.inner)
    }
}

/// `any::<T>()` — a uniform value over `T`'s whole range (mirrors
/// `proptest::arbitrary::any` for the primitive types used here).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use crate::TestRng;

    /// Admissible lengths for [`vec`]: an exact length or a half-open
    /// range, mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length lies in
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}
