//! Offline stand-in for the slice of the `proptest` crate this workspace
//! uses: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_recursive`, `prop_oneof!`, `any::<T>()`, integer-range and tuple
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this mini-harness instead. Semantics: each `#[test]` runs
//! `ProptestConfig::cases` random cases from a deterministic per-test seed
//! and panics with the `Debug` rendering of the failing inputs. There is no
//! shrinking and no failure persistence — regressions should be promoted to
//! explicit unit tests.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::sync::Arc;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator threaded through strategies.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// A generator seeded from the test name, so every test gets a stable
    /// but distinct stream.
    pub fn for_test(name: &str) -> TestRng {
        use rand::SeedableRng;
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform draw below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        use rand::Rng;
        self.inner.gen_range(0..bound)
    }
}

/// Error carried out of a failing property body (`prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// `Result` alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property: draws `config.cases` inputs and runs `body` on
/// each, panicking with the offending input on the first failure. Called by
/// the generated code of [`proptest!`]; not part of the public proptest
/// API surface.
pub fn run_property<V: Debug, S: Strategy<Value = V>>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut body: impl FnMut(V) -> TestCaseResult,
) {
    let mut rng = TestRng::for_test(test_name);
    for case in 0..config.cases.max(1) {
        let value = strategy.new_value(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(TestCaseError(message)) = body(value) {
            panic!(
                "proptest case {case} of {test_name} failed: {message}\n\
                 input: {rendered}"
            );
        }
    }
}

/// Namespace mirror of the real crate's `prop` module.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::collection::{vec, SizeRange, VecStrategy};
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Declares property tests. Supports the subset of the real macro's
/// grammar used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |($($pat,)+)| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` / `prop_assert_ne!(a, b, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Shared handle used by boxed/recursive strategies.
pub(crate) type DynStrategy<T> = Arc<dyn Fn(&mut TestRng) -> T>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u8..9, b in 0u64..5, c in 1usize..2) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 5, "b = {}", b);
            prop_assert_eq!(c, 1);
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u8..3, 7), w in prop::collection::vec(0u64..10, 1..5)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&d| d < 3));
            prop_assert!((1..5).contains(&w.len()));
        }

        #[test]
        fn maps_and_tuples_compose(pair in (0u32..4, 0u32..4).prop_map(|(x, y)| x * 10 + y)) {
            prop_assert!(pair % 10 < 4 && pair / 10 < 4);
        }

        #[test]
        fn oneof_picks_all_arms(x in prop_oneof![Just(1u32), Just(2u32), 5u32..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(#[allow(dead_code)] u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(t in (0u32..10).prop_map(Tree::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })) {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_input() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(3),
            &(0u32..10),
            |_| Err(crate::TestCaseError("nope".into())),
        );
    }
}
