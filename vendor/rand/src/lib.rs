//! Offline stand-in for the tiny slice of the `rand` crate this workspace
//! uses (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors an API-compatible deterministic PRNG instead. The generator is
//! xoshiro256** seeded through SplitMix64 — high-quality, fast, and *not*
//! cryptographic, exactly like the real `StdRng` contract-wise for the
//! benchmark/word-list workloads here (which only need reproducible
//! pseudo-random streams, never secrecy).

#![forbid(unsafe_code)]

/// Seedable generators, mirroring `rand::SeedableRng` for the one
/// constructor the workspace calls.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full range
/// (the stand-in for `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Integer types drawable from a uniform range, mirroring
/// `rand::distributions::uniform::SampleUniform`. The blanket
/// [`SampleRange`] impls below hang off this trait so that integer-literal
/// ranges infer their type from the call site, exactly like real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed range `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample from empty range");
                // Wrapping difference through the same-width unsigned type
                // is the true span even for signed endpoints.
                let span = end.wrapping_sub(start) as $u as u64;
                // Debiased multiply-shift (Lemire): reject the low word
                // below the threshold that makes every bucket equal-sized.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = rng.next_u64() as u128 * span as u128;
                    if (m as u64) >= threshold {
                        let offset = ((m >> 64) as u64) as $u as $t;
                        return start.wrapping_add(offset);
                    }
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                if end == <$t>::MAX {
                    // start > MIN here, so shifting down by one is safe.
                    return Self::sample_half_open(start - 1, end, rng) + 1;
                }
                Self::sample_half_open(start, end + 1, rng)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i32 => u32, i64 => u64, isize => usize
);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of type `T` (full range / fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A biased coin: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, the offline stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 0..10");
        for _ in 0..100 {
            let v = rng.gen_range(5u32..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads));
    }
}
