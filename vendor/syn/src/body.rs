//! Statement/expression-level parsing of function bodies, extending the
//! item-level mini-parser in [`crate`] (the `syn::Block`/`syn::Stmt` slice
//! of real `syn`, reduced to what the `bddcf-analyze` dataflow passes
//! need).
//!
//! The model is deliberately coarser than real Rust:
//!
//! * Statements are structured (`let`, `if`/`else`, `match`, the three
//!   loops, nested items) but *expressions* stay mostly flat token runs.
//!   Control flow appearing inside an expression (`let x = if c { a }
//!   else { b };`) is parsed structurally and attached as
//!   [`ExprStmt::nested`] sub-statements, so analyses can still recurse
//!   into every block, but the precise evaluation order within one
//!   expression is not modeled.
//! * Patterns are token runs plus the list of lowercase identifiers they
//!   bind ([`bound_names`]); types are not resolved.
//! * Struct literals in expression position are parsed as nested blocks
//!   (their field initializers become flat statements). That mis-models
//!   the construct but never loses a call event, which is all the
//!   analyses consume.
//!
//! The parser is total: unexpected shapes degrade to flat
//! [`Stmt::Expr`]/[`Stmt::Item`] runs instead of failing, so a lint pass
//! can never be disabled by an unusual (but valid) construct.

use crate::{Ident, Token, TokenKind, TokenStream};

/// A `{ … }` block: a sequence of statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the first token (or of the enclosing construct for
    /// an empty block).
    pub line: usize,
}

/// One statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let pat = init;` (including `let … else { … };`).
    Let(Local),
    /// `if cond { … } else { … }` — statement- or tail-position.
    If(IfStmt),
    /// `match scrutinee { arms }`.
    Match(MatchStmt),
    /// `loop { … }`, `while cond { … }`, `for pat in iter { … }`.
    Loop(LoopStmt),
    /// Any other expression statement: flat tokens plus the structured
    /// sub-statements found inside it (closure bodies, nested control
    /// flow, struct-literal innards).
    Expr(ExprStmt),
    /// A nested item (`fn`, `struct`, `use`, …), skipped as a unit.
    Item(TokenStream),
}

impl Stmt {
    /// 1-based line the statement starts on.
    pub fn line(&self) -> usize {
        match self {
            Stmt::Let(s) => s.line,
            Stmt::If(s) => s.line,
            Stmt::Match(s) => s.line,
            Stmt::Loop(s) => s.line,
            Stmt::Expr(s) => s.line,
            Stmt::Item(ts) => ts.tokens.first().map_or(1, |t| t.line),
        }
    }
}

/// A `let` statement.
#[derive(Clone, Debug)]
pub struct Local {
    /// Identifiers bound by the pattern (see [`bound_names`]).
    pub names: Vec<Ident>,
    /// Pattern and type-annotation tokens (between `let` and `=`).
    pub pat: TokenStream,
    /// The initializer, when present.
    pub init: Option<ExprStmt>,
    /// The diverging block of a `let … else { … }`.
    pub else_block: Option<Block>,
    /// 1-based line of the `let`.
    pub line: usize,
}

/// An `if` (or `if let`) statement; `else if` chains nest through
/// [`IfStmt::else_branch`] as a block holding a single [`Stmt::If`].
#[derive(Clone, Debug)]
pub struct IfStmt {
    /// Condition tokens (including any `let` pattern).
    pub cond: ExprStmt,
    /// The `then` block.
    pub then_branch: Block,
    /// The `else` block, if any.
    pub else_branch: Option<Block>,
    /// 1-based line of the `if`.
    pub line: usize,
}

/// A `match` statement.
#[derive(Clone, Debug)]
pub struct MatchStmt {
    /// Scrutinee tokens.
    pub scrutinee: ExprStmt,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
    /// 1-based line of the `match`.
    pub line: usize,
}

/// One match arm. Non-block bodies (`pat => expr,`) are wrapped in a
/// single-statement [`Block`].
#[derive(Clone, Debug)]
pub struct Arm {
    /// Pattern and guard tokens (everything before `=>`).
    pub pat: ExprStmt,
    /// Identifiers the pattern binds.
    pub names: Vec<Ident>,
    /// The arm body.
    pub body: Block,
    /// 1-based line of the pattern.
    pub line: usize,
}

/// Which loop keyword introduced a [`LoopStmt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }` — runs at least once, exits only via `break`/`return`.
    Loop,
    /// `while cond { … }` (including `while let`).
    While,
    /// `for pat in iter { … }`.
    For,
}

/// A loop statement.
#[derive(Clone, Debug)]
pub struct LoopStmt {
    /// Loop flavor.
    pub kind: LoopKind,
    /// Names bound by a `for` pattern (empty otherwise).
    pub names: Vec<Ident>,
    /// `while` condition or `for` iterator tokens (empty for `loop`).
    pub header: ExprStmt,
    /// The loop body.
    pub body: Block,
    /// 1-based line of the loop keyword.
    pub line: usize,
}

/// A flat expression fragment: its tokens (with nested `{…}` groups
/// removed) and the structured statements those groups parsed into.
#[derive(Clone, Debug, Default)]
pub struct ExprStmt {
    /// The flat tokens, nested block bodies excluded.
    pub tokens: TokenStream,
    /// Structured sub-statements found inside the expression.
    pub nested: Vec<Stmt>,
    /// 1-based line of the first token.
    pub line: usize,
}

impl ExprStmt {
    /// True when some flat token is the identifier `name` (nested
    /// sub-statements not searched).
    pub fn mentions(&self, name: &str) -> bool {
        self.tokens.contains_ident(name)
    }
}

/// Parses a function body token stream (as stored in
/// [`ItemFn::block`](crate::ItemFn)) into a structured [`Block`].
pub fn parse_block(tokens: &TokenStream) -> Block {
    let mut p = Parser {
        toks: &tokens.tokens,
        pos: 0,
    };
    let line = tokens.tokens.first().map_or(1, |t| t.line);
    Block {
        stmts: p.parse_stmts(),
        line,
    }
}

/// Identifiers a pattern fragment binds: lowercase-initial idents that are
/// not keywords, not `::`-qualified, and not struct-field labels
/// (`ident:`). Heuristic, but faithful for this workspace's patterns.
pub fn bound_names(pat: &[Token]) -> Vec<Ident> {
    const NON_BINDING: &[&str] = &[
        "mut", "ref", "box", "move", "in", "if", "let", "_", "self", "dyn", "as", "const",
        "static", "true", "false",
    ];
    let mut names = Vec::new();
    for (i, t) in pat.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || NON_BINDING.contains(&t.text.as_str())
            || t.text.chars().next().is_some_and(|c| c.is_uppercase())
        {
            continue;
        }
        let next = pat.get(i + 1);
        let prev = i.checked_sub(1).and_then(|j| pat.get(j));
        // `Foo::bar` path segments and `field: pat` labels do not bind;
        // a `name: Type` annotation at the top level does (handled by the
        // caller splitting the annotation off first).
        if next.is_some_and(|n| n.is_punct(':')) || prev.is_some_and(|p| p.is_punct(':')) {
            continue;
        }
        names.push(Ident {
            name: t.text.clone(),
            line: t.line,
        });
    }
    names
}

/// Splits `let` pattern tokens into (pattern, type annotation) at the
/// first top-level `:` (one not inside `()`/`[]`/`{}`).
fn split_type_annotation(pat: &[Token]) -> (&[Token], &[Token]) {
    let mut depth = 0usize;
    for (i, t) in pat.iter().enumerate() {
        match () {
            _ if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                depth = depth.saturating_sub(1)
            }
            _ if depth == 0 && t.is_punct(':') => {
                // `::` is a path separator, not an annotation.
                if pat.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    || i.checked_sub(1)
                        .and_then(|j| pat.get(j))
                        .is_some_and(|p| p.is_punct(':'))
                {
                    continue;
                }
                return (&pat[..i], &pat[i + 1..]);
            }
            _ => {}
        }
    }
    (pat, &[])
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "use",
    "impl",
    "mod",
    "trait",
    "type",
    "union",
    "macro_rules",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn line(&self) -> usize {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    /// Consumes a balanced `{ … }` group (caller guarantees the opening
    /// brace is next) and parses the inside as a block. An unbalanced
    /// group swallows the rest of the input — acceptable for a total
    /// parser whose callers already lexed/parsed the file successfully.
    fn parse_braced_block(&mut self) -> Block {
        let line = self.line();
        debug_assert!(self.peek().is_some_and(|t| t.is_punct('{')));
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(t) = self.bump() {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        let end = (self.pos.max(start + 1) - 1).min(self.toks.len());
        let mut inner = Parser {
            toks: &self.toks[start..end],
            pos: 0,
        };
        Block {
            stmts: inner.parse_stmts(),
            line,
        }
    }

    fn parse_stmts(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.bump();
                continue;
            }
            // Statement attributes (`#[allow(...)]` etc.) are skipped.
            if t.is_punct('#') {
                self.bump();
                if self.peek().is_some_and(|t| t.is_punct('!')) {
                    self.bump();
                }
                self.skip_balanced('[', ']');
                continue;
            }
            // Labeled loops/blocks: `'outer: loop { … }`.
            if t.kind == TokenKind::Lifetime && self.peek_at(1).is_some_and(|n| n.is_punct(':')) {
                self.bump();
                self.bump();
                continue;
            }
            let before = self.pos;
            let stmt = self.parse_stmt();
            if self.pos == before {
                self.bump(); // guarantee progress on a stray token
                continue;
            }
            stmts.push(stmt);
        }
        stmts
    }

    fn parse_stmt(&mut self) -> Stmt {
        let Some(t) = self.peek() else {
            return Stmt::Expr(ExprStmt::default());
        };
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "let" => return self.parse_let(),
                "if" => return self.parse_if(),
                "match" => return self.parse_match(),
                "loop" | "while" | "for" => return self.parse_loop(),
                "unsafe" if self.peek_at(1).is_some_and(|n| n.is_punct('{')) => {
                    let line = t.line;
                    let kw = self.bump().expect("peeked unsafe").clone();
                    let block = self.parse_braced_block();
                    return Stmt::Expr(ExprStmt {
                        tokens: TokenStream { tokens: vec![kw] },
                        nested: vec![Stmt::Expr(ExprStmt {
                            tokens: TokenStream::default(),
                            nested: block_to_nested(block),
                            line,
                        })],
                        line,
                    });
                }
                kw if ITEM_KEYWORDS.contains(&kw) => return self.parse_nested_item(),
                // `const X: T = …;` data items (but not `const {}` blocks
                // or `const fn`, which don't occur statement-level here).
                "static" => return self.parse_nested_item(),
                _ => {}
            }
        }
        if t.is_punct('{') {
            let line = t.line;
            let block = self.parse_braced_block();
            return Stmt::Expr(ExprStmt {
                tokens: TokenStream::default(),
                nested: block_to_nested(block),
                line,
            });
        }
        Stmt::Expr(self.parse_expr(ExprEnd::Semi))
    }

    fn skip_balanced(&mut self, open: char, close: char) {
        if !self.peek().is_some_and(|t| t.is_punct(open)) {
            return;
        }
        self.bump();
        let mut depth = 1usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// A nested item: consumed to its `;` or balanced `{…}` body.
    fn parse_nested_item(&mut self) -> Stmt {
        let mut sink = Vec::new();
        let mut paren = 0usize;
        let mut bracket = 0usize;
        while let Some(t) = self.peek() {
            if paren == 0 && bracket == 0 {
                if t.is_punct(';') {
                    sink.push(t.clone());
                    self.bump();
                    break;
                }
                if t.is_punct('{') {
                    let start = self.pos;
                    self.skip_balanced('{', '}');
                    sink.extend(self.toks[start..self.pos].iter().cloned());
                    break;
                }
            }
            match () {
                _ if t.is_punct('(') => paren += 1,
                _ if t.is_punct(')') => paren = paren.saturating_sub(1),
                _ if t.is_punct('[') => bracket += 1,
                _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
                _ => {}
            }
            sink.push(t.clone());
            self.bump();
        }
        Stmt::Item(TokenStream { tokens: sink })
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
        let mut pat = Vec::new();
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut brace = 0usize;
        while let Some(t) = self.peek() {
            if paren == 0 && bracket == 0 && brace == 0 {
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('=') && !self.peek_at(1).is_some_and(|n| n.is_punct('=')) {
                    break;
                }
            }
            match () {
                _ if t.is_punct('(') => paren += 1,
                _ if t.is_punct(')') => paren = paren.saturating_sub(1),
                _ if t.is_punct('[') => bracket += 1,
                _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
                _ if t.is_punct('{') => brace += 1,
                _ if t.is_punct('}') => brace = brace.saturating_sub(1),
                _ => {}
            }
            pat.push(t.clone());
            self.bump();
        }
        let (binding_part, _ty) = split_type_annotation(&pat);
        let names = bound_names(binding_part);
        let mut init = None;
        let mut else_block = None;
        if self.peek().is_some_and(|t| t.is_punct('=')) {
            self.bump();
            let expr = self.parse_expr(ExprEnd::SemiOrLetElse);
            init = Some(expr);
            if self.peek().is_some_and(|t| t.is_ident("else")) {
                self.bump();
                if self.peek().is_some_and(|t| t.is_punct('{')) {
                    else_block = Some(self.parse_braced_block());
                }
            }
        }
        if self.peek().is_some_and(|t| t.is_punct(';')) {
            self.bump();
        }
        Stmt::Let(Local {
            names,
            pat: TokenStream { tokens: pat },
            init,
            else_block,
            line,
        })
    }

    /// Condition/header scan: flat tokens until the opening `{` of the
    /// body (at delimiter depth 0). A `{` between a `let` and its `=`
    /// belongs to a struct *pattern* and is consumed flat; a `{` at
    /// paren/bracket depth > 0 belongs to a sub-expression and is parsed
    /// as a nested block.
    fn parse_header(&mut self) -> ExprStmt {
        let line = self.line();
        let mut tokens = Vec::new();
        let mut nested = Vec::new();
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut in_let_pattern = false;
        while let Some(t) = self.peek() {
            if t.is_ident("let") {
                in_let_pattern = true;
            }
            if t.is_punct('=')
                && !self.peek_at(1).is_some_and(|n| n.is_punct('='))
                && paren == 0
                && bracket == 0
            {
                in_let_pattern = false;
            }
            if t.is_punct('{') {
                if paren == 0 && bracket == 0 && !in_let_pattern {
                    break; // the body opens here
                }
                // Struct pattern or sub-expression block: keep structure.
                let block = self.parse_braced_block();
                nested.push(Stmt::Expr(ExprStmt {
                    tokens: TokenStream::default(),
                    nested: block_to_nested(block),
                    line,
                }));
                continue;
            }
            match () {
                _ if t.is_punct('(') => paren += 1,
                _ if t.is_punct(')') => paren = paren.saturating_sub(1),
                _ if t.is_punct('[') => bracket += 1,
                _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
                _ => {}
            }
            tokens.push(t.clone());
            self.bump();
        }
        ExprStmt {
            tokens: TokenStream { tokens },
            nested,
            line,
        }
    }

    fn parse_if(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `if`
        let cond = self.parse_header();
        let then_branch = if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.parse_braced_block()
        } else {
            Block::default()
        };
        let mut else_branch = None;
        if self.peek().is_some_and(|t| t.is_ident("else")) {
            self.bump();
            if self.peek().is_some_and(|t| t.is_ident("if")) {
                let nested_if = self.parse_if();
                else_branch = Some(Block {
                    line: nested_if.line(),
                    stmts: vec![nested_if],
                });
            } else if self.peek().is_some_and(|t| t.is_punct('{')) {
                else_branch = Some(self.parse_braced_block());
            }
        }
        Stmt::If(IfStmt {
            cond,
            then_branch,
            else_branch,
            line,
        })
    }

    fn parse_match(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `match`
        let scrutinee = self.parse_header();
        let mut arms = Vec::new();
        if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.bump();
            let start = self.pos;
            let mut depth = 1usize;
            while let Some(t) = self.bump() {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            let end = (self.pos.max(start + 1) - 1).min(self.toks.len());
            let mut inner = Parser {
                toks: &self.toks[start..end],
                pos: 0,
            };
            arms = inner.parse_arms();
        }
        Stmt::Match(MatchStmt {
            scrutinee,
            arms,
            line,
        })
    }

    fn parse_arms(&mut self) -> Vec<Arm> {
        let mut arms = Vec::new();
        while self.peek().is_some() {
            // Arm attributes.
            while self.peek().is_some_and(|t| t.is_punct('#')) {
                self.bump();
                self.skip_balanced('[', ']');
            }
            let Some(first) = self.peek() else { break };
            let arm_line = first.line;
            // Pattern + guard: tokens until `=>` at depth 0.
            let mut pat_tokens = Vec::new();
            let mut pat_nested = Vec::new();
            let mut paren = 0usize;
            let mut bracket = 0usize;
            while let Some(t) = self.peek() {
                if paren == 0
                    && bracket == 0
                    && t.is_punct('=')
                    && self.peek_at(1).is_some_and(|n| n.is_punct('>'))
                {
                    self.bump();
                    self.bump();
                    break;
                }
                if t.is_punct('{') {
                    // Struct pattern braces (or a guard's block — rare).
                    let block = self.parse_braced_block();
                    pat_nested.push(Stmt::Expr(ExprStmt {
                        tokens: TokenStream::default(),
                        nested: block_to_nested(block),
                        line: arm_line,
                    }));
                    continue;
                }
                match () {
                    _ if t.is_punct('(') => paren += 1,
                    _ if t.is_punct(')') => paren = paren.saturating_sub(1),
                    _ if t.is_punct('[') => bracket += 1,
                    _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
                    _ => {}
                }
                pat_tokens.push(t.clone());
                self.bump();
            }
            // Bound names come from the pattern part, not a guard.
            let guard_split = pat_tokens
                .iter()
                .position(|t| t.is_ident("if"))
                .unwrap_or(pat_tokens.len());
            let names = bound_names(&pat_tokens[..guard_split]);
            // Body: a block, or an expression up to `,` at depth 0.
            let body = if self.peek().is_some_and(|t| t.is_punct('{')) {
                let b = self.parse_braced_block();
                if self.peek().is_some_and(|t| t.is_punct(',')) {
                    self.bump();
                }
                b
            } else {
                let expr = self.parse_expr(ExprEnd::Comma);
                if self.peek().is_some_and(|t| t.is_punct(',')) {
                    self.bump();
                }
                Block {
                    line: expr.line,
                    stmts: vec![Stmt::Expr(expr)],
                }
            };
            arms.push(Arm {
                pat: ExprStmt {
                    tokens: TokenStream { tokens: pat_tokens },
                    nested: pat_nested,
                    line: arm_line,
                },
                names,
                body,
                line: arm_line,
            });
        }
        arms
    }

    fn parse_loop(&mut self) -> Stmt {
        let line = self.line();
        let kw = self.bump().expect("peeked loop keyword");
        let kind = match kw.text.as_str() {
            "while" => LoopKind::While,
            "for" => LoopKind::For,
            _ => LoopKind::Loop,
        };
        let mut names = Vec::new();
        let header = match kind {
            LoopKind::Loop => ExprStmt {
                line,
                ..ExprStmt::default()
            },
            LoopKind::While => self.parse_header(),
            LoopKind::For => {
                // Pattern until `in` at depth 0, then the iterator expr.
                let mut pat = Vec::new();
                let mut paren = 0usize;
                let mut bracket = 0usize;
                while let Some(t) = self.peek() {
                    if paren == 0 && bracket == 0 && t.is_ident("in") {
                        self.bump();
                        break;
                    }
                    match () {
                        _ if t.is_punct('(') => paren += 1,
                        _ if t.is_punct(')') => paren = paren.saturating_sub(1),
                        _ if t.is_punct('[') => bracket += 1,
                        _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
                        _ => {}
                    }
                    pat.push(t.clone());
                    self.bump();
                }
                names = bound_names(&pat);
                self.parse_header()
            }
        };
        let body = if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.parse_braced_block()
        } else {
            Block::default()
        };
        Stmt::Loop(LoopStmt {
            kind,
            names,
            header,
            body,
            line,
        })
    }

    /// Flat expression scan. Ends at `;` (always), at a top-level `else`
    /// (for `let … else`), or at a top-level `,` (match-arm bodies),
    /// depending on `end`; nested `{…}` groups and control-flow keywords
    /// become structured sub-statements.
    fn parse_expr(&mut self, end: ExprEnd) -> ExprStmt {
        let line = self.line();
        let mut tokens = Vec::new();
        let mut nested = Vec::new();
        let mut paren = 0usize;
        let mut bracket = 0usize;
        while let Some(t) = self.peek() {
            let at_top = paren == 0 && bracket == 0;
            if at_top && t.is_punct(';') {
                self.bump();
                break;
            }
            if at_top && end == ExprEnd::SemiOrLetElse && t.is_ident("else") {
                break;
            }
            if at_top && end == ExprEnd::Comma && t.is_punct(',') {
                break;
            }
            if t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "if" | "match" | "loop" | "while" | "for")
            {
                // `.iter()` chains etc. guarantee these only appear in
                // expression head positions; sub-parse structurally.
                nested.push(match t.text.as_str() {
                    "if" => self.parse_if(),
                    "match" => self.parse_match(),
                    _ => self.parse_loop(),
                });
                continue;
            }
            if t.is_punct('{') {
                // Closure body, struct literal, or plain block.
                let block = self.parse_braced_block();
                nested.push(Stmt::Expr(ExprStmt {
                    tokens: TokenStream::default(),
                    nested: block_to_nested(block),
                    line,
                }));
                continue;
            }
            match () {
                _ if t.is_punct('(') => paren += 1,
                _ if t.is_punct(')') => paren = paren.saturating_sub(1),
                _ if t.is_punct('[') => bracket += 1,
                _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
                _ => {}
            }
            tokens.push(t.clone());
            self.bump();
        }
        ExprStmt {
            tokens: TokenStream { tokens },
            nested,
            line,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ExprEnd {
    Semi,
    SemiOrLetElse,
    Comma,
}

/// Re-wraps a parsed block as the `nested` list of an expression
/// fragment (the block's statements, order preserved).
fn block_to_nested(block: Block) -> Vec<Stmt> {
    block.stmts
}

// ---------------------------------------------------------------------
// Call events
// ---------------------------------------------------------------------

/// Shape of one call argument, as far as the token level can tell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgShape {
    /// `[&] [mut] ident` or a pure dotted path — carries the root ident
    /// and the full dotted path.
    Path {
        /// First path segment (`self` for `self.mgr`).
        root: String,
        /// All segments, in order.
        segments: Vec<String>,
    },
    /// Anything more complex (nested calls produce their own events).
    Other,
}

impl ArgShape {
    /// The root identifier, when the argument is a simple path.
    pub fn root(&self) -> Option<&str> {
        match self {
            ArgShape::Path { root, .. } => Some(root),
            ArgShape::Other => None,
        }
    }
}

/// One method or function call found in a flat token run.
#[derive(Clone, Debug)]
pub struct CallEvent {
    /// For a method call: the dotted receiver chain, root first
    /// (`["self", "mgr"]`; a called segment keeps its parens:
    /// `["self", "manager_mut()"]`). `None` for free/associated calls or
    /// when the receiver is not a simple chain.
    pub receiver: Option<Vec<String>>,
    /// For a free or associated call: the `::` path, last segment = name.
    pub path: Vec<String>,
    /// The method or function name.
    pub name: String,
    /// True for `recv.name(…)`.
    pub is_method: bool,
    /// Top-level argument shapes, left to right.
    pub args: Vec<ArgShape>,
    /// 1-based line of the name token.
    pub line: usize,
}

impl CallEvent {
    /// Root identifier of the receiver chain (`self` for `self.mgr.op()`).
    pub fn receiver_root(&self) -> Option<&str> {
        self.receiver.as_ref().and_then(|r| r.first()).map(|s| {
            s.strip_suffix("()").unwrap_or(s) // a leading call has no root ident, but keep the name
        })
    }
}

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
];

/// Extracts every call event from a flat token run (method calls
/// `recv.name(…)` and free/associated calls `path::name(…)`), in source
/// order. Nested calls in argument position yield separate events.
pub fn call_events(stream: &TokenStream) -> Vec<CallEvent> {
    let toks = &stream.tokens;
    let mut events = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let args = parse_args(toks, i + 1);
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        if prev.is_some_and(|p| p.is_punct('.')) {
            // Method call: walk the receiver chain backwards.
            let receiver = walk_receiver(toks, i - 1);
            events.push(CallEvent {
                receiver,
                path: vec![t.text.clone()],
                name: t.text.clone(),
                is_method: true,
                args,
                line: t.line,
            });
        } else {
            // Free or associated call: collect `::`-separated prefix.
            let mut path = vec![t.text.clone()];
            let mut j = i;
            while j >= 2
                && toks[j - 1].is_punct(':')
                && toks.get(j.wrapping_sub(2)).is_some_and(|p| p.is_punct(':'))
                && j >= 3
                && toks[j - 3].kind == TokenKind::Ident
            {
                path.insert(0, toks[j - 3].text.clone());
                j -= 3;
            }
            events.push(CallEvent {
                receiver: None,
                path,
                name: t.text.clone(),
                is_method: false,
                args,
                line: t.line,
            });
        }
    }
    events
}

/// Walks a dotted receiver chain ending at the `.` at `dot` (exclusive),
/// returning segments root-first, or `None` for complex receivers.
fn walk_receiver(toks: &[Token], dot: usize) -> Option<Vec<String>> {
    let mut segments = Vec::new();
    let mut i = dot; // index of the `.` before the method name
    loop {
        // The segment before `.` ends at i-1.
        if i == 0 {
            return None;
        }
        let mut j = i - 1;
        // `?` postfix between segments: `x.f()?.g()`.
        if toks[j].is_punct('?') {
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if toks[j].is_punct(')') {
            // A called segment: walk back over the balanced group.
            let mut depth = 1usize;
            let mut k = j;
            while depth > 0 {
                if k == 0 {
                    return None;
                }
                k -= 1;
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                }
            }
            if k == 0 || toks[k - 1].kind != TokenKind::Ident {
                return None; // `(expr).method()` — complex receiver
            }
            segments.push(format!("{}()", toks[k - 1].text));
            if k - 1 == 0 {
                break;
            }
            i = k - 1;
        } else if toks[j].kind == TokenKind::Ident {
            if CALL_KEYWORDS.contains(&toks[j].text.as_str()) {
                return None;
            }
            segments.push(toks[j].text.clone());
            if j == 0 {
                break;
            }
            i = j;
        } else {
            return None;
        }
        // Continue the chain only through another `.`.
        if i == 0 || !toks[i - 1].is_punct('.') {
            break;
        }
        i -= 1;
        if i == 0 {
            return None;
        }
    }
    segments.reverse();
    Some(segments)
}

/// Parses the argument shapes of the balanced `(...)` group opening at
/// `open` (top-level comma split; `[&] [mut] path` arguments keep their
/// path, everything else is [`ArgShape::Other`]).
fn parse_args(toks: &[Token], open: usize) -> Vec<ArgShape> {
    debug_assert!(toks[open].is_punct('('));
    let mut args = Vec::new();
    let mut depth = 1usize;
    let mut current: Vec<&Token> = Vec::new();
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if depth == 1 && t.is_punct(',') {
            args.push(arg_shape(&current));
            current.clear();
        } else {
            current.push(t);
        }
        i += 1;
    }
    if !current.is_empty() {
        args.push(arg_shape(&current));
    }
    args
}

fn arg_shape(tokens: &[&Token]) -> ArgShape {
    let mut rest: &[&Token] = tokens;
    while let Some(first) = rest.first() {
        if first.is_punct('&') || first.is_ident("mut") {
            rest = &rest[1..];
        } else {
            break;
        }
    }
    if rest.is_empty() {
        return ArgShape::Other;
    }
    // Accept `ident (. ident)*` exactly.
    let mut segments = Vec::new();
    let mut expect_ident = true;
    for t in rest {
        if expect_ident {
            if t.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
                return ArgShape::Other;
            }
            segments.push(t.text.clone());
            expect_ident = false;
        } else {
            if !t.is_punct('.') {
                return ArgShape::Other;
            }
            expect_ident = true;
        }
    }
    if expect_ident {
        return ArgShape::Other; // trailing `.`
    }
    ArgShape::Path {
        root: segments[0].clone(),
        segments,
    }
}

// ---------------------------------------------------------------------
// Closure-capture events
// ---------------------------------------------------------------------

/// One closure literal found in a flat token run: `|params| body` or
/// `move |params| body`.
///
/// The body is not re-parsed here — a `{ … }` closure body already
/// surfaces through [`ExprStmt::nested`] — but the flat body tokens up to
/// the end of the closure expression are recorded, so capture analyses
/// can subtract the parameter names from the identifiers a closure
/// mentions.
#[derive(Clone, Debug)]
pub struct ClosureEvent {
    /// `move |…|` closures capture by value.
    pub is_move: bool,
    /// Parameter names the closure binds (its non-captures).
    pub params: Vec<Ident>,
    /// Flat tokens of a non-block body (empty when the body is a `{ … }`
    /// block — those statements live in the enclosing
    /// [`ExprStmt::nested`]).
    pub body: TokenStream,
    /// 1-based line of the opening `|`.
    pub line: usize,
}

/// Extracts every closure literal from a flat token run, in source order.
///
/// A `|` starts a closure when the preceding token cannot end an
/// expression (start of stream, an opening delimiter, `,`, `=`, `;`,
/// `:`, `&`, or the keywords `move`/`return`/`else`/`in`) — a `|` after
/// an identifier, literal, or closing delimiter is the binary-or /
/// or-pattern reading and is skipped.
pub fn closure_events(stream: &TokenStream) -> Vec<ClosureEvent> {
    const PRE_CLOSURE_IDENTS: &[&str] = &["move", "return", "else", "in"];
    let toks = &stream.tokens;
    let mut events = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !t.is_punct('|') {
            i += 1;
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        let starts_closure = match prev {
            None => true,
            Some(p) => match p.kind {
                TokenKind::Ident => PRE_CLOSURE_IDENTS.contains(&p.text.as_str()),
                TokenKind::Punct => !(p.is_punct(')') || p.is_punct(']') || p.is_punct('|')),
                _ => false,
            },
        };
        if !starts_closure {
            i += 1;
            continue;
        }
        let is_move = prev.is_some_and(|p| p.is_ident("move"));
        let line = t.line;
        // Parameters: up to the matching `|` (an immediate second `|` is
        // the empty parameter list `||`).
        let mut j = i + 1;
        let mut param_toks: Vec<Token> = Vec::new();
        let mut depth = 0usize;
        while j < toks.len() {
            let p = &toks[j];
            if depth == 0 && p.is_punct('|') {
                break;
            }
            match () {
                _ if p.is_punct('(') || p.is_punct('[') => depth += 1,
                _ if p.is_punct(')') || p.is_punct(']') => depth = depth.saturating_sub(1),
                _ => {}
            }
            param_toks.push(p.clone());
            j += 1;
        }
        if j >= toks.len() {
            break; // unterminated parameter list — not a closure after all
        }
        // Split `name: Type` annotations per comma before binding names,
        // mirroring `let` handling.
        let mut params = Vec::new();
        for piece in param_toks.split(|t| t.is_punct(',')) {
            let (pat, _ty) = split_type_annotation(piece);
            params.extend(bound_names(pat));
        }
        // Body: flat tokens until a `,`, `;`, or closing delimiter at the
        // closure's own depth (a `{ … }` body was lifted into `nested`).
        let mut k = j + 1;
        let mut body = Vec::new();
        let mut bdepth = 0usize;
        while k < toks.len() {
            let b = &toks[k];
            if bdepth == 0 && (b.is_punct(',') || b.is_punct(';') || b.is_punct(')')) {
                break;
            }
            match () {
                _ if b.is_punct('(') || b.is_punct('[') => bdepth += 1,
                _ if b.is_punct(')') || b.is_punct(']') => bdepth = bdepth.saturating_sub(1),
                _ => {}
            }
            body.push(b.clone());
            k += 1;
        }
        events.push(ClosureEvent {
            is_move,
            params,
            body: TokenStream { tokens: body },
            line,
        });
        i = j + 1;
    }
    events
}

/// Appends every identifier of a statement subtree — flat tokens, pattern
/// binders, and nested blocks alike — to `out`, in source order. This is
/// the capture side of closure analysis: what a statement's closures can
/// see is (at this model's precision) every identifier the statement
/// subtree mentions.
pub fn stmt_idents(stmt: &Stmt, out: &mut Vec<Ident>) {
    fn push_stream(ts: &TokenStream, out: &mut Vec<Ident>) {
        for t in &ts.tokens {
            if t.kind == TokenKind::Ident {
                out.push(Ident {
                    name: t.text.clone(),
                    line: t.line,
                });
            }
        }
    }
    fn push_expr(e: &ExprStmt, out: &mut Vec<Ident>) {
        push_stream(&e.tokens, out);
        for s in &e.nested {
            stmt_idents(s, out);
        }
    }
    fn push_block(b: &Block, out: &mut Vec<Ident>) {
        for s in &b.stmts {
            stmt_idents(s, out);
        }
    }
    match stmt {
        Stmt::Let(l) => {
            push_stream(&l.pat, out);
            if let Some(init) = &l.init {
                push_expr(init, out);
            }
            if let Some(eb) = &l.else_block {
                push_block(eb, out);
            }
        }
        Stmt::If(i) => {
            push_expr(&i.cond, out);
            push_block(&i.then_branch, out);
            if let Some(eb) = &i.else_branch {
                push_block(eb, out);
            }
        }
        Stmt::Match(m) => {
            push_expr(&m.scrutinee, out);
            for arm in &m.arms {
                push_expr(&arm.pat, out);
                push_block(&arm.body, out);
            }
        }
        Stmt::Loop(l) => {
            push_expr(&l.header, out);
            push_block(&l.body, out);
        }
        Stmt::Expr(e) => push_expr(e, out),
        Stmt::Item(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn block_of(body: &str) -> Block {
        let ts = tokenize(body).expect("lexes");
        parse_block(&ts)
    }

    #[test]
    fn lets_ifs_and_loops_structure() {
        let b = block_of(
            "let mut x = f(a);\n\
             if x > 1 { g(x); } else if q { h(); } else { k(); }\n\
             while x < 10 { x += 1; }\n\
             for item in items.iter() { use_item(item); }\n\
             loop { break; }\n",
        );
        assert_eq!(b.stmts.len(), 5);
        let Stmt::Let(l) = &b.stmts[0] else {
            panic!("let")
        };
        assert_eq!(l.names.len(), 1);
        assert_eq!(l.names[0].name, "x");
        assert!(l.init.as_ref().expect("init").mentions("f"));
        let Stmt::If(i) = &b.stmts[1] else {
            panic!("if")
        };
        assert!(i.cond.mentions("x"));
        assert_eq!(i.then_branch.stmts.len(), 1);
        let else_b = i.else_branch.as_ref().expect("else");
        let Stmt::If(elif) = &else_b.stmts[0] else {
            panic!("else-if")
        };
        assert!(elif.else_branch.is_some());
        let Stmt::Loop(w) = &b.stmts[2] else {
            panic!("while")
        };
        assert_eq!(w.kind, LoopKind::While);
        let Stmt::Loop(f) = &b.stmts[3] else {
            panic!("for")
        };
        assert_eq!(f.kind, LoopKind::For);
        assert_eq!(f.names[0].name, "item");
        assert!(f.header.mentions("items"));
        let Stmt::Loop(l) = &b.stmts[4] else {
            panic!("loop")
        };
        assert_eq!(l.kind, LoopKind::Loop);
    }

    #[test]
    fn match_arms_parse_with_guards_and_bodies() {
        let b = block_of(
            "match self.try_mk(v, lo, hi) {\n\
                 Ok(id) => id,\n\
                 Err(e) if retryable(e) => { self.gc(&roots); return Err(e); }\n\
                 Err(other) => panic!(\"{other}\"),\n\
             }\n",
        );
        let Stmt::Match(m) = &b.stmts[0] else {
            panic!("match")
        };
        assert!(m.scrutinee.mentions("try_mk"));
        assert_eq!(m.arms.len(), 3);
        assert_eq!(m.arms[0].names[0].name, "id");
        assert!(m.arms[1].pat.mentions("retryable"));
        assert_eq!(m.arms[1].body.stmts.len(), 2);
    }

    #[test]
    fn let_else_and_nested_expression_control_flow() {
        let b = block_of(
            "let Some(x) = lookup(k) else { return Err(e); };\n\
             let y = if c { m.try_and(a, b)? } else { a };\n",
        );
        let Stmt::Let(l) = &b.stmts[0] else {
            panic!("let-else")
        };
        assert_eq!(l.names[0].name, "x");
        assert_eq!(l.else_block.as_ref().expect("else block").stmts.len(), 1);
        let Stmt::Let(l2) = &b.stmts[1] else {
            panic!("let")
        };
        let init = l2.init.as_ref().expect("init");
        assert_eq!(init.nested.len(), 1, "the if is a nested statement");
        let Stmt::If(nested_if) = &init.nested[0] else {
            panic!("nested if")
        };
        let then_events: Vec<_> = nested_if
            .then_branch
            .stmts
            .iter()
            .flat_map(|s| match s {
                Stmt::Expr(e) => call_events(&e.tokens),
                _ => Vec::new(),
            })
            .collect();
        assert_eq!(then_events[0].name, "try_and");
    }

    #[test]
    fn struct_patterns_in_if_let_do_not_eat_the_branch() {
        let b = block_of("if let Point { x, .. } = p { use_x(x); }\n");
        let Stmt::If(i) = &b.stmts[0] else {
            panic!("if let")
        };
        assert_eq!(i.then_branch.stmts.len(), 1);
        let Stmt::Expr(e) = &i.then_branch.stmts[0] else {
            panic!("expr")
        };
        assert_eq!(call_events(&e.tokens)[0].name, "use_x");
    }

    #[test]
    fn call_events_capture_receivers_paths_and_args() {
        let ts = tokenize("self.mgr.try_and(f, g)?; BddManager::new(8); helper(&mut mgr, ids);")
            .expect("lexes");
        let events = call_events(&ts);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "try_and");
        assert_eq!(
            events[0].receiver.as_deref(),
            Some(&["self".to_string(), "mgr".to_string()][..])
        );
        assert_eq!(events[0].args[0].root(), Some("f"));
        assert_eq!(events[0].args[1].root(), Some("g"));
        assert_eq!(events[1].path, ["BddManager", "new"]);
        assert!(!events[1].is_method);
        assert_eq!(events[2].args[0].root(), Some("mgr"));
        assert_eq!(events[2].args[1].root(), Some("ids"));
    }

    #[test]
    fn called_segments_in_receiver_chains_keep_their_root() {
        let ts = tokenize("self.manager_mut().set_budget(b); cf.manager().node_count(f);")
            .expect("lexes");
        let events = call_events(&ts);
        // The intermediate `manager_mut(` produces its own (earlier) event.
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"manager_mut"));
        let set_budget = events
            .iter()
            .find(|e| e.name == "set_budget")
            .expect("set_budget event");
        assert_eq!(set_budget.receiver_root(), Some("self"));
        assert_eq!(
            set_budget.receiver.as_deref(),
            Some(&["self".to_string(), "manager_mut()".to_string()][..])
        );
        assert_eq!(events.last().expect("events").receiver_root(), Some("cf"));
    }

    #[test]
    fn closures_and_struct_literals_keep_their_events_reachable() {
        let b = block_of("items.retain(|c| { self.mgr.try_or(c.id, acc).is_ok() });\n");
        let Stmt::Expr(e) = &b.stmts[0] else {
            panic!("expr")
        };
        assert_eq!(call_events(&e.tokens)[0].name, "retain");
        // The closure body surfaced as a nested statement subtree.
        fn find_try_or(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Expr(e) => {
                    call_events(&e.tokens).iter().any(|ev| ev.name == "try_or")
                        || find_try_or(&e.nested)
                }
                _ => false,
            })
        }
        assert!(find_try_or(&e.nested));
    }

    #[test]
    fn closure_events_find_params_move_and_bodies() {
        let ts = tokenize("spawn(move || worker_loop(&shared)); items.map(|e: &Entry| e.id);")
            .expect("lexes");
        let events = closure_events(&ts);
        assert_eq!(events.len(), 2);
        assert!(events[0].is_move);
        assert!(events[0].params.is_empty());
        assert!(events[0].body.contains_ident("worker_loop"));
        assert!(events[0].body.contains_ident("shared"));
        assert!(!events[1].is_move);
        assert_eq!(events[1].params.len(), 1);
        assert_eq!(events[1].params[0].name, "e");
        assert!(events[1].body.contains_ident("id"));
    }

    #[test]
    fn binary_or_and_or_patterns_are_not_closures() {
        let ts = tokenize("let z = a | b; if x == 1 || y == 2 { f(); }").expect("lexes");
        // `a | b` : `|` after ident. `||` : second `|` after `|`; the first
        // follows `1` (a literal). Neither reads as a closure.
        assert!(closure_events(&ts).is_empty());
    }

    #[test]
    fn stmt_idents_cover_nested_blocks_and_patterns() {
        let b = block_of("let total = specs.iter().map(|s| { score(s, weight) }).sum();\n");
        let mut idents = Vec::new();
        stmt_idents(&b.stmts[0], &mut idents);
        let names: Vec<&str> = idents.iter().map(|i| i.name.as_str()).collect();
        for expected in ["total", "specs", "s", "score", "weight", "sum"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
    }

    #[test]
    fn nested_items_are_skipped_as_units() {
        let b = block_of("fn helper(x: u32) -> u32 { x + 1 }\nlet y = helper(2);\n");
        assert!(matches!(&b.stmts[0], Stmt::Item(_)));
        assert!(matches!(&b.stmts[1], Stmt::Let(_)));
    }

    #[test]
    fn labeled_loops_parse() {
        let b = block_of("'outer: loop { break 'outer; }\n");
        let Stmt::Loop(l) = &b.stmts[0] else {
            panic!("loop")
        };
        assert_eq!(l.kind, LoopKind::Loop);
        assert_eq!(l.body.stmts.len(), 1);
    }
}
