//! Offline stand-in for the slice of the `syn` crate this workspace uses:
//! [`parse_file`] into a [`File`] of items ([`ItemFn`], [`ItemMod`],
//! [`ItemConst`], [`ItemImpl`], verbatim rest), attributes, visibilities,
//! and line-spanned token streams, plus [`tokenize`] for the raw
//! `proc-macro2`-style stream.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this mini-parser instead. Scope: item-level structure plus the
//! statement-level body model in [`body`] — function bodies are stored as
//! flat [`TokenStream`]s and can be structured on demand with
//! [`parse_block`] for the `bddcf-analyze` dataflow passes; token-level
//! analyses keep using helpers like [`TokenStream::method_calls`]. Trait
//! declarations, macros, and unusual items are preserved verbatim, not
//! modeled; `const` generic braces in signatures outside `[]`/`()` groups
//! are the one known parse blind spot.

#![forbid(unsafe_code)]

pub mod body;
pub mod cfg;

pub use cfg::{Cfg, CfgNode, CfgNodeKind, LoopCfg};

pub use body::{
    call_events, closure_events, parse_block, stmt_idents, ArgShape, Arm, Block, CallEvent,
    ClosureEvent, ExprStmt, IfStmt, Local, LoopKind, LoopStmt, MatchStmt, Stmt,
};

use std::fmt;

/// A lex or parse failure, with the 1-based source line.
#[derive(Debug)]
pub struct Error {
    /// 1-based line where the failure was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

fn err(line: usize, message: impl Into<String>) -> Error {
    Error {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`s, prefix stripped).
    Ident,
    /// Number, string, byte, or char literal (verbatim, quotes included).
    Literal,
    /// A lifetime such as `'a` (verbatim, leading quote included).
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text (for [`TokenKind::Ident`] the identifier itself).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True for a single-character punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True for an identifier token whose text equals `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A flat, line-spanned token sequence (comments and whitespace removed).
#[derive(Clone, Debug, Default)]
pub struct TokenStream {
    /// The tokens, in source order.
    pub tokens: Vec<Token>,
}

impl TokenStream {
    /// All identifier tokens, in order.
    pub fn idents(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| t.kind == TokenKind::Ident)
    }

    /// True if some identifier token equals `name` exactly.
    pub fn contains_ident(&self, name: &str) -> bool {
        self.idents().any(|t| t.text == name)
    }

    /// Method-call name tokens: every `ident` in a `. ident (` sequence.
    /// (Field accesses lack the `(`; tuple indices are literals; float
    /// literals lex as single tokens, so `1.0` never splits.)
    pub fn method_calls(&self) -> impl Iterator<Item = &Token> {
        self.tokens.windows(3).filter_map(|w| {
            (w[0].is_punct('.') && w[1].kind == TokenKind::Ident && w[2].is_punct('('))
                .then_some(&w[1])
        })
    }
}

/// Lexes `src` into a flat token stream: whitespace and comments (line,
/// nested block, doc) are dropped; strings, raw strings, byte strings,
/// chars, lifetimes, and numbers become single [`TokenKind::Literal`] /
/// [`TokenKind::Lifetime`] tokens.
pub fn tokenize(src: &str) -> Result<TokenStream, Error> {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();

    let ident_start = |c: char| c.is_alphabetic() || c == '_';
    let ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if depth > 0 {
                return Err(err(start_line, "unterminated block comment"));
            }
        } else if c == '"' {
            let (text, ni, nl) = lex_string(&b, i, line)?;
            out.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
            });
            i = ni;
            line = nl;
        } else if c == '\'' {
            // Lifetime (`'a` with no closing quote) or char literal.
            let mut j = i + 1;
            if j < b.len() && ident_start(b[j]) {
                while j < b.len() && ident_cont(b[j]) {
                    j += 1;
                }
                if j >= b.len() || b[j] != '\'' {
                    let text: String = b[i..j].iter().collect();
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
            }
            let (text, ni, nl) = lex_char(&b, i, line)?;
            out.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
            });
            i = ni;
            line = nl;
        } else if (c == 'r' || c == 'b') && is_string_prefix(&b, i) {
            let (text, ni, nl) = lex_prefixed_literal(&b, i, line)?;
            out.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
            });
            i = ni;
            line = nl;
        } else if c == 'r'
            && i + 1 < b.len()
            && b[i + 1] == '#'
            && i + 2 < b.len()
            && ident_start(b[i + 2])
        {
            // Raw identifier `r#type`: strip the prefix.
            let mut j = i + 2;
            while j < b.len() && ident_cont(b[j]) {
                j += 1;
            }
            let text: String = b[i + 2..j].iter().collect();
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                line: start_line,
            });
            i = j;
        } else if ident_start(c) {
            let mut j = i;
            while j < b.len() && ident_cont(b[j]) {
                j += 1;
            }
            let text: String = b[i..j].iter().collect();
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                line: start_line,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i;
            while j < b.len() {
                let d = b[j];
                if ident_cont(d) {
                    j += 1;
                } else if d == '.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                    j += 1; // decimal point of a float, not a method call
                } else if (d == '+' || d == '-') && j > i && matches!(b[j - 1], 'e' | 'E') {
                    j += 1; // exponent sign
                } else {
                    break;
                }
            }
            let text: String = b[i..j].iter().collect();
            out.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
            });
            i = j;
        } else {
            out.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line: start_line,
            });
            i += 1;
        }
    }
    Ok(TokenStream { tokens: out })
}

/// Is `b[i..]` a string-ish literal prefix (`r"`, `r#"`, `b"`, `b'`, `br`)?
fn is_string_prefix(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < b.len() && b[j] == '\'' {
            return true;
        }
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == '"' && j > i
}

/// Lexes a `"…"` string starting at `b[i]`; returns (text, next, line).
fn lex_string(b: &[char], i: usize, mut line: usize) -> Result<(String, usize, usize), Error> {
    let start_line = line;
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => {
                // A `\<newline>` line continuation still ends a source
                // line; losing it would shift every later token's line.
                if b.get(j + 1) == Some(&'\n') {
                    line += 1;
                }
                j += 2;
            }
            '\n' => {
                line += 1;
                j += 1;
            }
            '"' => {
                let text: String = b[i..=j].iter().collect();
                return Ok((text, j + 1, line));
            }
            _ => j += 1,
        }
    }
    Err(err(start_line, "unterminated string literal"))
}

/// Lexes a `'…'` char literal starting at `b[i]`.
fn lex_char(b: &[char], i: usize, line: usize) -> Result<(String, usize, usize), Error> {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\'' => {
                let text: String = b[i..=j].iter().collect();
                return Ok((text, j + 1, line));
            }
            '\n' => return Err(err(line, "unterminated char literal")),
            _ => j += 1,
        }
    }
    Err(err(line, "unterminated char literal"))
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` starting at `b[i]`.
fn lex_prefixed_literal(
    b: &[char],
    i: usize,
    mut line: usize,
) -> Result<(String, usize, usize), Error> {
    let start_line = line;
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < b.len() && b[j] == '\'' {
            let (text, ni, nl) = lex_char(b, j, line)?;
            return Ok((format!("b{text}"), ni, nl));
        }
        if j < b.len() && b[j] == '"' {
            let (text, ni, nl) = lex_string(b, j, line)?;
            return Ok((format!("b{text}"), ni, nl));
        }
    }
    // Raw (byte) string: r/br, then hashes, then the quoted body ended by
    // a quote followed by the same number of hashes.
    if j < b.len() && b[j] == 'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != '"' {
        return Err(err(start_line, "malformed raw string prefix"));
    }
    j += 1;
    while j < b.len() {
        if b[j] == '\n' {
            line += 1;
            j += 1;
            continue;
        }
        if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let text: String = b[i..k].iter().collect();
                return Ok((text, k, line));
            }
        }
        j += 1;
    }
    Err(err(start_line, "unterminated raw string literal"))
}

// ---------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------

/// An identifier with its source line (the `syn`/`proc-macro2` span slice
/// this workspace needs).
#[derive(Clone, Debug)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// An outer attribute, rendered compactly: `#[cfg(test)]` becomes
/// `cfg(test)` (spaces only between adjacent word characters).
#[derive(Clone, Debug)]
pub struct Attribute {
    /// Compact text of the bracketed body.
    pub text: String,
    /// 1-based line.
    pub line: usize,
}

impl Attribute {
    /// The leading path ident (`cfg` for `#[cfg(test)]`), if any.
    pub fn path(&self) -> &str {
        let end = self
            .text
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(self.text.len());
        &self.text[..end]
    }
}

/// Item visibility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// `pub`.
    Public,
    /// `pub(crate)`, `pub(super)`, … with the compact restriction text.
    Restricted(String),
    /// Private.
    Inherited,
}

impl Visibility {
    /// True for plain `pub`.
    pub fn is_pub(&self) -> bool {
        matches!(self, Visibility::Public)
    }
}

/// A function signature: the name plus the flat tokens between the name
/// and the body (generics, arguments, return type, where clause).
#[derive(Clone, Debug)]
pub struct Signature {
    /// The function name.
    pub ident: Ident,
    /// Everything after the name and before `{` / `;`.
    pub tokens: TokenStream,
}

/// A `fn` item (free or inherent-impl).
#[derive(Clone, Debug)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Visibility.
    pub vis: Visibility,
    /// Name and signature tokens.
    pub sig: Signature,
    /// Body tokens (without the outer braces); `None` for a bodyless
    /// declaration.
    pub block: Option<TokenStream>,
}

/// A `mod` item.
#[derive(Clone, Debug)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Visibility.
    pub vis: Visibility,
    /// Module name.
    pub ident: Ident,
    /// Inline content; `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
}

/// A `const` or `static` item.
#[derive(Clone, Debug)]
pub struct ItemConst {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Visibility.
    pub vis: Visibility,
    /// Constant name.
    pub ident: Ident,
}

/// An `impl` block; only `fn` members are modeled.
#[derive(Clone, Debug)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Compact text of the tokens between `impl` and the body.
    pub self_ty: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// The member functions.
    pub fns: Vec<ItemFn>,
}

/// One top-level or module-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A function.
    Fn(ItemFn),
    /// A module.
    Mod(ItemMod),
    /// A constant or static.
    Const(ItemConst),
    /// An impl block.
    Impl(ItemImpl),
    /// Anything else (structs, enums, uses, traits, macros), skipped as a
    /// balanced unit.
    Verbatim(TokenStream),
}

/// A parsed source file.
#[derive(Clone, Debug)]
pub struct File {
    /// The top-level items.
    pub items: Vec<Item>,
}

/// Parses `src` into a [`File`]. Lex errors and unbalanced delimiters
/// fail; unmodeled constructs become [`Item::Verbatim`].
pub fn parse_file(src: &str) -> Result<File, Error> {
    let stream = tokenize(src)?;
    let mut cur = Cursor {
        toks: &stream.tokens,
        pos: 0,
    };
    let items = parse_items(&mut cur, false)?;
    Ok(File { items })
}

struct Cursor<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + offset)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn line(&self) -> usize {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    /// Consumes a balanced `open … close` group (the delimiters included),
    /// returning the inner tokens.
    fn balanced(&mut self, open: char, close: char) -> Result<Vec<Token>, Error> {
        let start = self.line();
        let Some(t) = self.next() else {
            return Err(err(start, format!("expected `{open}`")));
        };
        if !t.is_punct(open) {
            return Err(err(
                t.line,
                format!("expected `{open}`, found `{}`", t.text),
            ));
        }
        let mut depth = 1usize;
        let mut inner = Vec::new();
        while let Some(t) = self.next() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return Ok(inner);
                }
            }
            inner.push(t.clone());
        }
        Err(err(start, format!("unbalanced `{open}…{close}`")))
    }
}

/// Joins token texts compactly: a space only between adjacent word-ish
/// tokens (`pub fn` stays readable, `cfg(test)` stays tight).
fn compact(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        let wordish = |c: char| c.is_alphanumeric() || c == '_' || c == '"';
        if let (Some(last), Some(first)) = (s.chars().last(), t.text.chars().next()) {
            if wordish(last) && wordish(first) {
                s.push(' ');
            }
        }
        s.push_str(&t.text);
    }
    s
}

fn parse_attrs(cur: &mut Cursor<'_>) -> Result<Vec<Attribute>, Error> {
    let mut attrs = Vec::new();
    while let Some(t) = cur.peek() {
        if !t.is_punct('#') {
            break;
        }
        let line = t.line;
        cur.next();
        // Inner attributes `#![…]` configure the file; recorded like outer
        // ones so callers can ignore them uniformly.
        if cur.peek().is_some_and(|t| t.is_punct('!')) {
            cur.next();
        }
        let inner = cur.balanced('[', ']')?;
        attrs.push(Attribute {
            text: compact(&inner),
            line,
        });
    }
    Ok(attrs)
}

fn parse_visibility(cur: &mut Cursor<'_>) -> Result<Visibility, Error> {
    if !cur.peek().is_some_and(|t| t.is_ident("pub")) {
        return Ok(Visibility::Inherited);
    }
    cur.next();
    if cur.peek().is_some_and(|t| t.is_punct('(')) {
        let inner = cur.balanced('(', ')')?;
        return Ok(Visibility::Restricted(compact(&inner)));
    }
    Ok(Visibility::Public)
}

/// Skips tokens until a `;` at depth 0 or a balanced depth-0 `{…}` group,
/// collecting everything consumed. Covers `use …;`, `struct … { … }`,
/// `macro_rules! m { … }`, `trait T { … }`, and initializer expressions
/// with nested braces.
fn skip_item_rest(cur: &mut Cursor<'_>, sink: &mut Vec<Token>) -> Result<(), Error> {
    let start = cur.line();
    let mut paren = 0usize;
    let mut bracket = 0usize;
    while let Some(t) = cur.peek() {
        if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                sink.push(t.clone());
                cur.next();
                return Ok(());
            }
            if t.is_punct('{') {
                sink.push(t.clone());
                let inner = cur.balanced('{', '}')?;
                sink.extend(inner);
                sink.push(Token {
                    kind: TokenKind::Punct,
                    text: "}".into(),
                    line: cur.line(),
                });
                return Ok(());
            }
            if t.is_punct('}') {
                // The enclosing block is closing; the item had no body.
                return Ok(());
            }
        }
        match () {
            _ if t.is_punct('(') => paren += 1,
            _ if t.is_punct(')') => paren = paren.saturating_sub(1),
            _ if t.is_punct('[') => bracket += 1,
            _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
            _ => {}
        }
        sink.push(t.clone());
        cur.next();
    }
    Err(err(start, "item runs past the end of the file"))
}

/// Consumes `fn` modifiers (`const`, `unsafe`, `async`, `extern "C"`)
/// when they precede a `fn`. Returns false when the leading keyword
/// starts a different item.
fn eat_fn_modifiers(cur: &mut Cursor<'_>) -> bool {
    let mut progressed = false;
    loop {
        let Some(t) = cur.peek() else {
            return progressed;
        };
        match t.text.as_str() {
            "fn" => return true,
            "const" | "unsafe" | "async" => {
                // `const` may open a const item instead of `const fn`.
                let next = cur.peek_at(1);
                let fn_like = matches!(
                    next.map(|n| n.text.as_str()),
                    Some("fn" | "unsafe" | "async" | "extern")
                );
                if t.is_ident("const") && !fn_like {
                    return progressed;
                }
                cur.next();
                progressed = true;
            }
            "extern" => {
                cur.next();
                progressed = true;
                if cur.peek().is_some_and(|t| t.kind == TokenKind::Literal) {
                    cur.next();
                }
            }
            _ => return progressed,
        }
    }
}

fn parse_fn(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, vis: Visibility) -> Result<ItemFn, Error> {
    let kw = cur.next().expect("caller checked `fn`");
    debug_assert!(kw.is_ident("fn"));
    let Some(name) = cur.next() else {
        return Err(err(kw.line, "`fn` without a name"));
    };
    if name.kind != TokenKind::Ident {
        return Err(err(
            name.line,
            format!("expected fn name, found `{}`", name.text),
        ));
    }
    let ident = Ident {
        name: name.text.clone(),
        line: name.line,
    };
    // Signature: everything up to the body `{` (or `;`) at ()/[] depth 0.
    let mut sig = Vec::new();
    let mut paren = 0usize;
    let mut bracket = 0usize;
    let block = loop {
        let Some(t) = cur.peek() else {
            return Err(err(ident.line, format!("fn `{}` has no body", ident.name)));
        };
        if paren == 0 && bracket == 0 {
            if t.is_punct('{') {
                let inner = cur.balanced('{', '}')?;
                break Some(TokenStream { tokens: inner });
            }
            if t.is_punct(';') {
                cur.next();
                break None;
            }
        }
        match () {
            _ if t.is_punct('(') => paren += 1,
            _ if t.is_punct(')') => paren = paren.saturating_sub(1),
            _ if t.is_punct('[') => bracket += 1,
            _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
            _ => {}
        }
        sig.push(t.clone());
        cur.next();
    };
    Ok(ItemFn {
        attrs,
        vis,
        sig: Signature {
            ident,
            tokens: TokenStream { tokens: sig },
        },
        block,
    })
}

fn parse_impl(cur: &mut Cursor<'_>, attrs: Vec<Attribute>) -> Result<ItemImpl, Error> {
    let kw = cur.next().expect("caller checked `impl`");
    let line = kw.line;
    let mut ty = Vec::new();
    let mut paren = 0usize;
    let mut bracket = 0usize;
    loop {
        let Some(t) = cur.peek() else {
            return Err(err(line, "impl block without a body"));
        };
        if paren == 0 && bracket == 0 && t.is_punct('{') {
            break;
        }
        match () {
            _ if t.is_punct('(') => paren += 1,
            _ if t.is_punct(')') => paren = paren.saturating_sub(1),
            _ if t.is_punct('[') => bracket += 1,
            _ if t.is_punct(']') => bracket = bracket.saturating_sub(1),
            _ => {}
        }
        ty.push(t.clone());
        cur.next();
    }
    let body = cur.balanced('{', '}')?;
    let mut inner = Cursor {
        toks: &body,
        pos: 0,
    };
    let mut fns = Vec::new();
    while inner.peek().is_some() {
        let attrs = parse_attrs(&mut inner)?;
        let vis = parse_visibility(&mut inner)?;
        if eat_fn_modifiers(&mut inner) && inner.peek().is_some_and(|t| t.is_ident("fn")) {
            fns.push(parse_fn(&mut inner, attrs, vis)?);
        } else {
            // Associated const/type or an unmodeled member: skip a unit.
            let mut sink = Vec::new();
            skip_item_rest(&mut inner, &mut sink)?;
            if sink.is_empty() {
                inner.next(); // guarantee progress
            }
        }
    }
    Ok(ItemImpl {
        attrs,
        self_ty: compact(&ty),
        line,
        fns,
    })
}

fn parse_items(cur: &mut Cursor<'_>, in_block: bool) -> Result<Vec<Item>, Error> {
    let mut items = Vec::new();
    while let Some(t) = cur.peek() {
        if in_block && t.is_punct('}') {
            break;
        }
        let attrs = parse_attrs(cur)?;
        let vis = parse_visibility(cur)?;
        let Some(t) = cur.peek() else { break };
        match t.text.as_str() {
            "fn" | "unsafe" | "async" | "extern" | "const" | "static"
                if t.kind == TokenKind::Ident =>
            {
                let is_data = t.is_ident("const") || t.is_ident("static");
                if eat_fn_modifiers(cur) && cur.peek().is_some_and(|t| t.is_ident("fn")) {
                    items.push(Item::Fn(parse_fn(cur, attrs, vis)?));
                } else if is_data {
                    let kw = cur.next().expect("peeked const/static");
                    if cur.peek().is_some_and(|t| t.is_ident("mut")) {
                        cur.next();
                    }
                    let Some(name) = cur.next() else {
                        return Err(err(kw.line, "const without a name"));
                    };
                    let ident = Ident {
                        name: name.text.clone(),
                        line: name.line,
                    };
                    let mut sink = Vec::new();
                    skip_item_rest(cur, &mut sink)?;
                    items.push(Item::Const(ItemConst { attrs, vis, ident }));
                } else {
                    // `extern "C" { … }` block or similar: verbatim.
                    let mut sink = Vec::new();
                    skip_item_rest(cur, &mut sink)?;
                    items.push(Item::Verbatim(TokenStream { tokens: sink }));
                }
            }
            "mod" if t.kind == TokenKind::Ident => {
                let kw = cur.next().expect("peeked mod");
                let Some(name) = cur.next() else {
                    return Err(err(kw.line, "`mod` without a name"));
                };
                let ident = Ident {
                    name: name.text.clone(),
                    line: name.line,
                };
                let content = if cur.peek().is_some_and(|t| t.is_punct(';')) {
                    cur.next();
                    None
                } else {
                    let body = cur.balanced('{', '}')?;
                    let mut inner = Cursor {
                        toks: &body,
                        pos: 0,
                    };
                    Some(parse_items(&mut inner, false)?)
                };
                items.push(Item::Mod(ItemMod {
                    attrs,
                    vis,
                    ident,
                    content,
                }));
            }
            "impl" if t.kind == TokenKind::Ident => {
                items.push(Item::Impl(parse_impl(cur, attrs)?));
            }
            _ => {
                let mut sink = Vec::new();
                skip_item_rest(cur, &mut sink)?;
                if sink.is_empty() {
                    cur.next(); // stray token; guarantee progress
                } else {
                    items.push(Item::Verbatim(TokenStream { tokens: sink }));
                }
            }
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_line_continuation_still_counts_its_newline() {
        let src = "fn f() {\n    let s = \"a \\\n       b\";\n    after();\n}\n";
        let ts = tokenize(src).expect("lexes");
        let after = ts
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after token");
        assert_eq!(after.line, 4, "the \\<newline> escape spans lines 2-3");
    }

    #[test]
    fn tokenizer_strips_comments_and_lexes_literals() {
        let src = r####"
// line comment
/* block /* nested */ still comment */
fn f() {
    let s = "a \" quoted";
    let r = r#"raw "inside""#;
    let b = b"bytes";
    let c = 'x';
    let lt: &'static str = s;
    let v = 1.0f64.max(2.5);
}
"####;
        let ts = tokenize(src).expect("lexes");
        assert!(ts.contains_ident("fn"));
        assert!(!ts.tokens.iter().any(|t| t.text.contains("comment")));
        let lits: Vec<&str> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert!(lits.contains(&"\"a \\\" quoted\""));
        assert!(lits.contains(&"r#\"raw \"inside\"\"#"));
        assert!(lits.contains(&"b\"bytes\""));
        assert!(lits.contains(&"'x'"));
        assert!(lits.contains(&"1.0f64"));
        assert!(ts
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn method_calls_are_detected_on_the_token_level() {
        let ts = tokenize("fn f() { a.and(b); c.d; t.0; x .or (y); 1.0.sqrt(); }").expect("lexes");
        let names: Vec<&str> = ts.method_calls().map(|t| t.text.as_str()).collect();
        assert_eq!(names, ["and", "or", "sqrt"]);
    }

    #[test]
    fn parses_fns_mods_impls_and_consts() {
        let src = r#"
pub const MAGIC: [u8; 4] = *b"MAGI";

pub struct S { x: u32 }

impl S {
    /// Doc.
    pub fn try_new(x: u32) -> Result<Self, ()> {
        if x > 3 { return Err(()); }
        Ok(S { x })
    }

    fn helper(&self) -> u32 { self.x.min(2) }
}

#[cfg(test)]
mod tests {
    pub fn inner() {}
}
"#;
        let file = parse_file(src).expect("parses");
        let mut fns = 0;
        let mut consts = 0;
        let mut mods = 0;
        for item in &file.items {
            match item {
                Item::Const(c) => {
                    consts += 1;
                    assert_eq!(c.ident.name, "MAGIC");
                    assert!(c.vis.is_pub());
                }
                Item::Impl(i) => {
                    assert_eq!(i.fns.len(), 2);
                    assert_eq!(i.fns[0].sig.ident.name, "try_new");
                    assert!(i.fns[0].vis.is_pub());
                    assert!(i.fns[0]
                        .block
                        .as_ref()
                        .expect("has body")
                        .contains_ident("Err"));
                    assert!(!i.fns[1].vis.is_pub());
                    fns += i.fns.len();
                }
                Item::Mod(m) => {
                    mods += 1;
                    assert_eq!(m.ident.name, "tests");
                    assert!(m.attrs.iter().any(|a| a.text == "cfg(test)"));
                    assert_eq!(m.content.as_ref().map(Vec::len), Some(1));
                }
                _ => {}
            }
        }
        assert_eq!((fns, consts, mods), (2, 1, 1));
    }

    #[test]
    fn signature_tokens_and_lines_are_kept() {
        let src = "fn f(a: u32) -> Result<(), Error> {\n    body();\n}\n";
        let file = parse_file(src).expect("parses");
        let Item::Fn(f) = &file.items[0] else {
            panic!("expected a fn")
        };
        assert!(f.sig.tokens.contains_ident("Error"));
        assert_eq!(f.sig.ident.line, 1);
        let body = f.block.as_ref().expect("has body");
        assert_eq!(body.tokens[0].line, 2);
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let ts = tokenize("let r#type = 1;").expect("lexes");
        assert!(ts.contains_ident("type"));
    }

    #[test]
    fn unbalanced_input_is_a_typed_error() {
        let e = parse_file("fn f() {").expect_err("unbalanced");
        assert!(e.to_string().contains("unbalanced"));
    }
}
