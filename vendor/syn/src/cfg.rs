//! Control-flow graph construction over the statement model in
//! [`crate::body`].
//!
//! Nodes are flat expression fragments (plus synthetic entry/exit/join
//! nodes); edges are possible successions. Loops are recorded with enough
//! structure ([`LoopCfg`]) for a client to ask the question the
//! `bddcf-analyze` budget-poll pass needs: *is there a path through the
//! loop body that completes an iteration without passing through a node
//! satisfying some predicate?* ([`Cfg::body_path_avoiding`]).
//!
//! The graph is an over-approximation in the usual lint direction:
//! statements nested inside expressions (closure bodies, struct-literal
//! innards) are lowered as if they executed inline, and a `let … else`
//! diverging block falls through to the join as well as routing its
//! `return`/`break` terminators. Extra edges can only make a "no path
//! avoids the predicate" claim harder to establish, never unsound in the
//! direction that hides a finding… for the *avoiding*-path query the
//! extra edges create false paths, which errs toward reporting — the
//! safe direction for a lint.

use crate::body::{Block, ExprStmt, LoopKind, Stmt};
use crate::{Token, TokenStream};

/// Role of a [`CfgNode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CfgNodeKind {
    /// Function entry.
    Entry,
    /// Function exit (every `return`, `?`, and fall-off edge ends here).
    Exit,
    /// A flat statement/expression fragment.
    Stmt,
    /// A branch condition / match scrutinee / loop header fragment.
    Cond,
    /// A synthetic merge point (no tokens).
    Join,
    /// An unreachable continuation after a terminator (no incoming edges).
    Dead,
}

/// One CFG node.
#[derive(Clone, Debug)]
pub struct CfgNode {
    /// Node role.
    pub kind: CfgNodeKind,
    /// Flat tokens evaluated at this node (empty for synthetic nodes).
    pub tokens: TokenStream,
    /// 1-based source line.
    pub line: usize,
}

/// One loop of the function, with the node indices a client needs to
/// reason about its iterations.
#[derive(Clone, Debug)]
pub struct LoopCfg {
    /// Loop flavor.
    pub kind: LoopKind,
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// The node evaluated at each iteration boundary: the `while`
    /// condition / `for` iterator for those kinds, a synthetic join for
    /// `loop`.
    pub header: usize,
    /// First node of the body.
    pub body_entry: usize,
    /// Reaching this node from [`LoopCfg::body_entry`] completes one
    /// iteration (it is the back-edge target — the header).
    pub back_target: usize,
    /// All nodes lowered from the loop body (inclusive index range).
    pub body_nodes: std::ops::Range<usize>,
}

/// A function body's control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// The nodes; index 0 is always [`Cfg::entry`].
    pub nodes: Vec<CfgNode>,
    /// Successor adjacency, parallel to `nodes`.
    pub succ: Vec<Vec<usize>>,
    /// Entry node index.
    pub entry: usize,
    /// Exit node index.
    pub exit: usize,
    /// Every loop, outermost first in source order.
    pub loops: Vec<LoopCfg>,
}

impl Cfg {
    /// Builds the CFG of a parsed function body.
    pub fn build(block: &Block) -> Cfg {
        let mut b = Builder {
            nodes: Vec::new(),
            succ: Vec::new(),
            loops: Vec::new(),
        };
        let entry = b.node(CfgNodeKind::Entry, TokenStream::default(), block.line);
        let exit = b.node(CfgNodeKind::Exit, TokenStream::default(), block.line);
        let ctx = Ctx {
            exit,
            break_target: None,
            continue_target: None,
        };
        let tail = b.lower_block(block, entry, &ctx);
        b.edge(tail, exit);
        Cfg {
            nodes: b.nodes,
            succ: b.succ,
            entry,
            exit,
            loops: b.loops,
        }
    }

    /// True when some path `from → … → to` exists that visits only nodes
    /// where `avoid` is false (the endpoints: `from` must itself satisfy
    /// `!avoid`; reaching `to` counts regardless of `avoid(to)`).
    pub fn body_path_avoiding(
        &self,
        from: usize,
        to: usize,
        avoid: &dyn Fn(&CfgNode) -> bool,
    ) -> bool {
        if from == to {
            return !avoid(&self.nodes[from]);
        }
        if avoid(&self.nodes[from]) {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.succ[n] {
                if s == to {
                    return true;
                }
                if !seen[s] && !avoid(&self.nodes[s]) {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

struct Ctx {
    exit: usize,
    break_target: Option<usize>,
    continue_target: Option<usize>,
}

struct Builder {
    nodes: Vec<CfgNode>,
    succ: Vec<Vec<usize>>,
    loops: Vec<LoopCfg>,
}

impl Builder {
    fn node(&mut self, kind: CfgNodeKind, tokens: TokenStream, line: usize) -> usize {
        self.nodes.push(CfgNode { kind, tokens, line });
        self.succ.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, a: usize, b: usize) {
        if !self.succ[a].contains(&b) {
            self.succ[a].push(b);
        }
    }

    /// Lowers a block starting from node `cur`; returns the tail node the
    /// next statement flows from.
    fn lower_block(&mut self, block: &Block, mut cur: usize, ctx: &Ctx) -> usize {
        for stmt in &block.stmts {
            cur = self.lower_stmt(stmt, cur, ctx);
        }
        cur
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: usize, ctx: &Ctx) -> usize {
        match stmt {
            Stmt::Item(_) => cur, // nested items do not execute here
            Stmt::Expr(e) => self.lower_expr(e, cur, ctx, CfgNodeKind::Stmt),
            Stmt::Let(l) => {
                let mut cur = cur;
                if let Some(init) = &l.init {
                    cur = self.lower_expr(init, cur, ctx, CfgNodeKind::Stmt);
                }
                if let Some(else_block) = &l.else_block {
                    // Divergence required by the language; lenient
                    // fall-through edge kept (see module docs).
                    let else_tail = self.lower_block(else_block, cur, ctx);
                    let join = self.node(CfgNodeKind::Join, TokenStream::default(), l.line);
                    self.edge(cur, join);
                    self.edge(else_tail, join);
                    cur = join;
                }
                cur
            }
            Stmt::If(i) => {
                let cond = self.lower_expr(&i.cond, cur, ctx, CfgNodeKind::Cond);
                let join = self.node(CfgNodeKind::Join, TokenStream::default(), i.line);
                let then_tail = self.lower_block(&i.then_branch, cond, ctx);
                self.edge(then_tail, join);
                match &i.else_branch {
                    Some(else_block) => {
                        let else_tail = self.lower_block(else_block, cond, ctx);
                        self.edge(else_tail, join);
                    }
                    None => self.edge(cond, join),
                }
                join
            }
            Stmt::Match(m) => {
                let scrut = self.lower_expr(&m.scrutinee, cur, ctx, CfgNodeKind::Cond);
                let join = self.node(CfgNodeKind::Join, TokenStream::default(), m.line);
                if m.arms.is_empty() {
                    self.edge(scrut, join);
                }
                for arm in &m.arms {
                    // The pattern/guard gets its own node so a polling
                    // guard is credited to paths through this arm.
                    let pat = self.node(CfgNodeKind::Cond, arm.pat.tokens.clone(), arm.line);
                    self.edge(scrut, pat);
                    let tail = self.lower_block(&arm.body, pat, ctx);
                    self.edge(tail, join);
                }
                join
            }
            Stmt::Loop(l) => {
                // Header: evaluated at every iteration boundary.
                let (header_kind, header_tokens) = match l.kind {
                    LoopKind::Loop => (CfgNodeKind::Join, TokenStream::default()),
                    _ => (CfgNodeKind::Cond, l.header.tokens.clone()),
                };
                let mut header_pred = cur;
                for nested in &l.header.nested {
                    header_pred = self.lower_stmt(nested, header_pred, ctx);
                }
                let header = self.node(header_kind, header_tokens, l.line);
                self.edge(header_pred, header);
                let after = self.node(CfgNodeKind::Join, TokenStream::default(), l.line);
                if l.kind != LoopKind::Loop {
                    self.edge(header, after); // condition false / iterator done
                }
                let body_ctx = Ctx {
                    exit: ctx.exit,
                    break_target: Some(after),
                    continue_target: Some(header),
                };
                let body_start = self.nodes.len();
                let body_entry = self.node(CfgNodeKind::Join, TokenStream::default(), l.body.line);
                self.edge(header, body_entry);
                let body_tail = self.lower_block(&l.body, body_entry, &body_ctx);
                self.edge(body_tail, header); // back edge
                let body_end = self.nodes.len();
                self.loops.push(LoopCfg {
                    kind: l.kind,
                    line: l.line,
                    header,
                    body_entry,
                    back_target: header,
                    body_nodes: body_start..body_end,
                });
                after
            }
        }
    }

    /// Lowers an expression fragment: its nested structured statements
    /// first (as if inline), then the flat node; `return`/`break`/
    /// `continue` heads and `?` operators route edges to the relevant
    /// targets.
    fn lower_expr(&mut self, e: &ExprStmt, mut cur: usize, ctx: &Ctx, kind: CfgNodeKind) -> usize {
        for nested in &e.nested {
            cur = self.lower_stmt(nested, cur, ctx);
        }
        let node = self.node(kind, e.tokens.clone(), e.line);
        self.edge(cur, node);
        let head = e.tokens.tokens.first();
        let terminator = match head {
            Some(t) if t.is_ident("return") => Some(ctx.exit),
            Some(t) if t.is_ident("break") => ctx.break_target,
            Some(t) if t.is_ident("continue") => ctx.continue_target,
            _ => None,
        };
        if let Some(target) = terminator {
            self.edge(node, target);
            return self.node(CfgNodeKind::Dead, TokenStream::default(), e.line);
        }
        // A `?` makes early exit possible; the node still falls through.
        if e.tokens.tokens.iter().any(|t: &Token| t.is_punct('?')) {
            self.edge(node, ctx.exit);
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::parse_block;
    use crate::tokenize;

    fn cfg_of(body: &str) -> Cfg {
        let ts = tokenize(body).expect("lexes");
        Cfg::build(&parse_block(&ts))
    }

    fn mentions(node: &CfgNode, name: &str) -> bool {
        node.tokens.contains_ident(name)
    }

    #[test]
    fn straight_line_reaches_exit() {
        let cfg = cfg_of("a();\nb();\n");
        assert!(cfg.body_path_avoiding(cfg.entry, cfg.exit, &|_| false));
        // Avoiding `b` blocks the only path.
        assert!(!cfg.body_path_avoiding(cfg.entry, cfg.exit, &|n| mentions(n, "b")));
    }

    #[test]
    fn if_without_else_has_a_skipping_path() {
        let cfg = cfg_of("if c { poll(); }\nwork();\n");
        assert!(
            cfg.body_path_avoiding(cfg.entry, cfg.exit, &|n| mentions(n, "poll")),
            "the false branch skips poll()"
        );
        let cfg = cfg_of("if c { poll(); } else { poll(); }\nwork();\n");
        assert!(!cfg.body_path_avoiding(cfg.entry, cfg.exit, &|n| mentions(n, "poll")));
    }

    #[test]
    fn while_loop_iteration_query() {
        // Poll on only one branch: an iteration can avoid it.
        let cfg = cfg_of("while c {\n  if x { poll(); }\n  work();\n}\n");
        let l = &cfg.loops[0];
        assert_eq!(l.kind, LoopKind::While);
        assert!(cfg.body_path_avoiding(l.body_entry, l.back_target, &|n| mentions(n, "poll")));
        // Poll on every path: no avoiding iteration.
        let cfg = cfg_of("while c {\n  poll();\n  work();\n}\n");
        let l = &cfg.loops[0];
        assert!(!cfg.body_path_avoiding(l.body_entry, l.back_target, &|n| mentions(n, "poll")));
    }

    #[test]
    fn continue_paths_count_as_iterations() {
        let cfg = cfg_of("while c {\n  if skip { continue; }\n  poll();\n}\n");
        let l = &cfg.loops[0];
        assert!(
            cfg.body_path_avoiding(l.body_entry, l.back_target, &|n| mentions(n, "poll")),
            "the continue path completes an iteration without polling"
        );
    }

    #[test]
    fn break_and_return_paths_do_not_complete_iterations() {
        let cfg = cfg_of("loop {\n  poll();\n  if done { break; }\n}\n");
        let l = &cfg.loops[0];
        assert_eq!(l.kind, LoopKind::Loop);
        assert!(!cfg.body_path_avoiding(l.body_entry, l.back_target, &|n| mentions(n, "poll")));
        // A body that always returns never re-iterates.
        let cfg = cfg_of("loop {\n  return x;\n}\n");
        let l = &cfg.loops[0];
        assert!(!cfg.body_path_avoiding(l.body_entry, l.back_target, &|n| {
            mentions(n, "never_called")
        }));
    }

    #[test]
    fn match_scrutinee_polls_cover_all_arms() {
        let cfg = cfg_of("while c {\n  match m.try_step() {\n    Ok(x) => keep(x),\n    Err(e) => record(e),\n  }\n}\n");
        let l = &cfg.loops[0];
        assert!(!cfg.body_path_avoiding(l.body_entry, l.back_target, &|n| {
            mentions(n, "try_step")
        }));
    }

    #[test]
    fn nested_loops_are_both_recorded() {
        let cfg = cfg_of("for i in xs {\n  while c {\n    inner();\n  }\n  outer();\n}\n");
        assert_eq!(cfg.loops.len(), 2);
        let kinds: Vec<LoopKind> = cfg.loops.iter().map(|l| l.kind).collect();
        assert!(kinds.contains(&LoopKind::For));
        assert!(kinds.contains(&LoopKind::While));
    }

    #[test]
    fn question_mark_adds_an_exit_edge_but_still_falls_through() {
        let cfg = cfg_of("let x = fallible()?;\nafter(x);\n");
        assert!(cfg.body_path_avoiding(cfg.entry, cfg.exit, &|n| mentions(n, "after")));
        assert!(!cfg.body_path_avoiding(cfg.entry, cfg.exit, &|n| mentions(n, "fallible")));
    }
}
