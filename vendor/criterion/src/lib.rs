//! Offline stand-in for the slice of the `criterion` crate this workspace
//! uses: `Criterion`, `benchmark_group` / `bench_function`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this mini-harness instead. It runs every registered routine a
//! small fixed number of times and reports the mean wall-clock time — no
//! warm-up, outlier analysis, or statistics. Numbers from this harness are
//! smoke-level only; real measurement requires the upstream crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped between measurements. Accepted for API
/// compatibility; this harness treats every variant the same.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// One input per measurement; setup cost excluded from timing.
    SmallInput,
    /// Same behaviour here as [`BatchSize::SmallInput`].
    LargeInput,
    /// Same behaviour here as [`BatchSize::SmallInput`].
    PerIteration,
}

/// Timing handle passed to each benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup
    /// time from the reported duration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration budget (the real crate's sample
    /// count; here, used directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs `f` with a timing handle and prints the mean time per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let iterations = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size) as u64;
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / iterations.max(1) as f64 * 1e6;
        println!("{}/{id}: {mean:.1} us/iter ({iterations} iters)", self.name);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark registry and runner, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 25,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups (benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routines(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1u64 + 1));
        group.bench_function(format!("batched_{}", 2), |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, routines);

    #[test]
    fn harness_runs_registered_benchmarks() {
        benches();
    }
}
