//! End-to-end integration: generator → BDD_for_CF → sifting → width
//! reduction → LUT cascade → bit-accurate simulation against the oracle.

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf::bdd::ReorderCost;
use bddcf::cascade::{synthesize, synthesize_partitioned, CascadeOptions};
use bddcf::core::partition::bipartition;
use bddcf::core::Cf;
use bddcf::funcs::{build_isf_pieces, Benchmark, DecimalAdder, RadixConverter, RnsConverter};
use bddcf::logic::{MultiOracle, Response};

/// Full pipeline on one benchmark; exhaustive verification over the input
/// space (only for small `n`).
fn pipeline_exhaustive(benchmark: &dyn Benchmark, cells: &CascadeOptions) {
    let n = benchmark.num_inputs();
    assert!(n <= 16, "exhaustive check only for small functions");
    let (mgr, layout, isf) = build_isf_pieces(benchmark);
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    let parts = if m == 1 {
        vec![0..1]
    } else {
        vec![0..half, half..m]
    };
    let multi = synthesize_partitioned(&mgr, &layout, &isf, &parts, cells, |cf| {
        cf.optimize_order(ReorderCost::SumOfWidths, 1);
        cf.reduce_alg33_default();
    });
    for word in 0..1u64 << n {
        let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
        if let Response::Value(expect) = benchmark.respond(&input) {
            assert_eq!(
                multi.eval(&input),
                expect,
                "{} input {word:#x}",
                benchmark.name()
            );
        }
    }
}

#[test]
fn ternary_converter_through_cascade() {
    pipeline_exhaustive(
        &RadixConverter::new(3, 4),
        &CascadeOptions {
            max_cell_inputs: 6,
            max_cell_outputs: 5,
            ..CascadeOptions::default()
        },
    );
}

#[test]
fn five_nary_converter_through_cascade() {
    pipeline_exhaustive(
        &RadixConverter::new(5, 3),
        &CascadeOptions {
            max_cell_inputs: 7,
            max_cell_outputs: 6,
            ..CascadeOptions::default()
        },
    );
}

#[test]
fn small_rns_through_cascade() {
    pipeline_exhaustive(
        &RnsConverter::new(vec![3, 5, 7]),
        &CascadeOptions {
            max_cell_inputs: 7,
            max_cell_outputs: 6,
            ..CascadeOptions::default()
        },
    );
}

#[test]
fn one_digit_adder_through_cascade() {
    pipeline_exhaustive(&DecimalAdder::new(1), &CascadeOptions::default());
}

#[test]
fn two_digit_adder_through_cascade() {
    pipeline_exhaustive(
        &DecimalAdder::new(2),
        &CascadeOptions {
            max_cell_inputs: 9,
            max_cell_outputs: 8,
            ..CascadeOptions::default()
        },
    );
}

#[test]
fn alg31_and_alg33_compose_through_cascade() {
    // Apply both reductions back to back before synthesis.
    let conv = RadixConverter::new(3, 3);
    let (mgr, layout, isf) = build_isf_pieces(&conv);
    let halves = bipartition(&mgr, &layout, &isf);
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    let ranges = [0..half, half..m];
    let mut cascades = Vec::new();
    for mut cf in halves {
        cf.optimize_order(ReorderCost::SumOfWidths, 2);
        cf.reduce_alg31();
        cf.reduce_support_variables();
        cf.reduce_alg33_default();
        cascades.push(
            synthesize(
                &mut cf,
                &CascadeOptions {
                    max_cell_inputs: 6,
                    max_cell_outputs: 6,
                    ..CascadeOptions::default()
                },
            )
            .expect("small converter fits"),
        );
    }
    for word in 0..1u64 << conv.num_inputs() {
        let input: Vec<bool> = (0..conv.num_inputs()).map(|i| word >> i & 1 == 1).collect();
        if let Response::Value(expect) = conv.respond(&input) {
            let got = cascades[0].eval(&input) | (cascades[1].eval(&input) << ranges[0].len());
            assert_eq!(got, expect, "input {word:#x}");
        }
    }
}

#[test]
fn fixpoint_driver_through_cascade() {
    // Same shape as `pipeline_exhaustive`, but reducing with the full
    // fixpoint driver. With `--features bddcf/check` this test walks the
    // driver's phase-boundary invariant assertions (manager integrity,
    // Definition 2.4, validity, refinement) after every reduction phase.
    for benchmark in [
        Box::new(RadixConverter::new(3, 3)) as Box<dyn Benchmark>,
        Box::new(DecimalAdder::new(1)),
    ] {
        let n = benchmark.num_inputs();
        let (mgr, layout, isf) = build_isf_pieces(benchmark.as_ref());
        let m = layout.num_outputs();
        let half = m.div_ceil(2);
        let parts = [0..half, half..m];
        let cells = CascadeOptions {
            max_cell_inputs: 7,
            max_cell_outputs: 6,
            ..CascadeOptions::default()
        };
        let multi = synthesize_partitioned(&mgr, &layout, &isf, &parts, &cells, |cf| {
            cf.optimize_order(ReorderCost::SumOfWidths, 1);
            cf.reduce_to_fixpoint(&bddcf::core::Alg33Options::default(), 3);
        });
        for word in 0..1u64 << n {
            let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
            if let Response::Value(expect) = benchmark.respond(&input) {
                assert_eq!(
                    multi.eval(&input),
                    expect,
                    "{} input {word:#x}",
                    benchmark.name()
                );
            }
        }
    }
}

#[test]
fn reductions_only_narrow_the_specification() {
    // On every input (care or don't care), the completed function after
    // reductions must satisfy what the ISF originally allowed.
    let conv = RadixConverter::new(5, 2);
    let (mgr, layout, isf) = build_isf_pieces(&conv);
    let mut cf = Cf::from_isf(mgr, layout, isf);
    cf.optimize_order(ReorderCost::SumOfWidths, 2);
    cf.reduce_alg31();
    cf.reduce_alg33_default();
    let g = cf.complete();
    assert!(cf.realizes_original(&g));
    assert!(cf.is_fully_live());
}
