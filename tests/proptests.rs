//! Cross-crate property tests: random incompletely specified functions are
//! pushed through every reduction and realization path, and the invariants
//! the paper's algorithms rely on are checked on each.

#![allow(clippy::needless_range_loop)] // row indices mirror truth-table rows
use bddcf::cascade::{synthesize, CascadeOptions};
use bddcf::core::Cf;
use bddcf::decomp::bdd_decomp::decompose_at;
use bddcf::logic::{Ternary, TruthTable};
use proptest::prelude::*;

const NUM_INPUTS: usize = 4;
const NUM_OUTPUTS: usize = 2;

/// Strategy: a random 4-input 2-output ISF as a vector of ternary digits.
fn arb_table() -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(0u8..3, (1 << NUM_INPUTS) * NUM_OUTPUTS).prop_map(|digits| {
        let mut t = TruthTable::new(NUM_INPUTS, NUM_OUTPUTS);
        for r in 0..1 << NUM_INPUTS {
            for j in 0..NUM_OUTPUTS {
                let v = match digits[r * NUM_OUTPUTS + j] {
                    0 => Ternary::Zero,
                    1 => Ternary::One,
                    _ => Ternary::DontCare,
                };
                t.set(r, j, v);
            }
        }
        t
    })
}

fn admitted(table: &TruthTable, r: usize, word: u64) -> bool {
    (0..NUM_OUTPUTS).all(|j| table.get(r, j).admits(word >> j & 1 == 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alg31_preserves_realizability(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg31();
        prop_assert!(cf.is_fully_live());
        for r in 0..1usize << NUM_INPUTS {
            let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
            let words = cf.allowed_words(&input);
            prop_assert!(!words.is_empty());
            for w in words {
                prop_assert!(admitted(&table, r, w), "row {} word {:02b}", r, w);
            }
        }
    }

    #[test]
    fn alg33_preserves_realizability(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_alg33_default();
        prop_assert!(stats.max_width_after <= stats.max_width_before);
        prop_assert!(cf.is_fully_live());
        for r in 0..1usize << NUM_INPUTS {
            let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
            for w in cf.allowed_words(&input) {
                prop_assert!(admitted(&table, r, w));
            }
        }
    }

    #[test]
    fn support_reduction_preserves_realizability(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        let removed = cf.reduce_support_variables();
        prop_assert!(cf.is_fully_live());
        prop_assert!(cf.support_inputs().len() <= NUM_INPUTS - removed.len());
        let g = cf.complete();
        prop_assert!(cf.realizes_original(&g));
    }

    #[test]
    fn completion_realizes_after_any_reduction_chain(table in arb_table(), which in 0u8..4) {
        let mut cf = Cf::from_truth_table(&table);
        match which {
            0 => { cf.reduce_alg31(); }
            1 => { cf.reduce_alg33_default(); }
            2 => { cf.reduce_support_variables(); }
            _ => {
                cf.reduce_alg31();
                cf.reduce_alg33_default();
                cf.reduce_support_variables();
            }
        }
        let g = cf.complete();
        prop_assert!(cf.realizes_original(&g));
        // The walk evaluator agrees with the specification too.
        for r in 0..1usize << NUM_INPUTS {
            let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
            prop_assert!(admitted(&table, r, cf.eval_completed(&input)));
        }
    }

    #[test]
    fn cascade_agrees_with_walk(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg33_default();
        let cascade = synthesize(&mut cf, &CascadeOptions {
            max_cell_inputs: 4,
            max_cell_outputs: 4,
            ..CascadeOptions::default()
        }).expect("a 4-input function always fits 4-input cells");
        for r in 0..1usize << NUM_INPUTS {
            let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
            let word = cascade.eval(&input);
            prop_assert!(admitted(&table, r, word), "row {} word {:02b}", r, word);
        }
    }

    #[test]
    fn decomposition_matches_walk_at_every_input_cut(table in arb_table()) {
        let cf = Cf::from_truth_table(&table);
        // Default order: all inputs above all outputs — every input cut works.
        for k in 1..NUM_INPUTS {
            let d = decompose_at(&cf, k);
            prop_assert_eq!(d.columns.len(), cf.width_profile().at_cut(k));
            for r in 0..1usize << NUM_INPUTS {
                let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
                prop_assert_eq!(d.eval(&cf, &input), cf.eval_completed(&input));
            }
        }
    }

    #[test]
    fn sifting_preserves_allowed_words(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        let before: Vec<Vec<u64>> = (0..1usize << NUM_INPUTS)
            .map(|r| {
                let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
                cf.allowed_words(&input)
            })
            .collect();
        cf.optimize_order(bddcf::bdd::ReorderCost::SumOfWidths, 2);
        for r in 0..1usize << NUM_INPUTS {
            let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
            prop_assert_eq!(cf.allowed_words(&input), before[r].clone(), "row {}", r);
        }
    }

    #[test]
    fn dc0_and_dc1_bound_the_isf(table in arb_table()) {
        // The completions are completely specified functions the ISF admits.
        let mut cf = Cf::from_truth_table(&table);
        let t0 = table.completed(false);
        let t1 = table.completed(true);
        for r in 0..1usize << NUM_INPUTS {
            let input: Vec<bool> = (0..NUM_INPUTS).map(|i| r >> i & 1 == 1).collect();
            let words = cf.allowed_words(&input);
            let w0: u64 = (0..NUM_OUTPUTS as u64)
                .filter(|&j| t0.get(r, j as usize) == Ternary::One)
                .map(|j| 1 << j)
                .sum();
            let w1: u64 = (0..NUM_OUTPUTS as u64)
                .filter(|&j| t1.get(r, j as usize) == Ternary::One)
                .map(|j| 1 << j)
                .sum();
            prop_assert!(words.contains(&w0));
            prop_assert!(words.contains(&w1));
        }
    }

    #[test]
    fn emitted_artifacts_round_trip_and_refine_the_spec(table in arb_table()) {
        // The full translation chain on a random ISF: reduce → synthesize
        // → emit Verilog → parse → lower → lint → reconstruct → re-emit
        // byte-identically, and the symbolic χ of the netlist refines the
        // original specification (Layer 5's contract, end to end).
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg33_default();
        let cascade = synthesize(&mut cf, &CascadeOptions {
            max_cell_inputs: 4,
            max_cell_outputs: 4,
            ..CascadeOptions::default()
        }).expect("a 4-input function always fits 4-input cells");

        let text = bddcf::io::cascade_to_verilog(&cascade, "m")
            .expect("`m` is a valid module name");
        let parsed = bddcf::io::parse_verilog(&text)
            .map_err(|e| proptest::TestCaseError(format!("emitted Verilog must parse: {e}")))?;
        let (net, lowering) = bddcf::check::netlist_from_verilog(&parsed, "prop.v");
        prop_assert!(lowering.is_clean(), "{lowering}");
        // A random ISF may keep spec-vacuous inputs wired into ROM
        // addresses; suppress NL007 for exactly those, as `bddcf lint` does.
        let live = cf.support_inputs();
        let spec_vacuous: Vec<usize> = (0..NUM_INPUTS).filter(|i| !live.contains(i)).collect();
        let lint = bddcf::check::lint_netlist_with_spec(&net, "prop.v", &spec_vacuous);
        prop_assert!(lint.is_clean(), "{lint}");

        let rebuilt = bddcf::check::netlist_to_cascade(&net, "prop.v")
            .map_err(|r| proptest::TestCaseError(format!("reconstruction failed: {r}")))?;
        let reemitted = bddcf::io::cascade_to_verilog(&rebuilt, "m")
            .expect("`m` is a valid module name");
        prop_assert_eq!(&reemitted, &text, "emit → parse → re-emit must be byte-faithful");

        let refinement = bddcf::check::check_netlist_refinement(&net, &mut cf, "prop.v");
        prop_assert!(refinement.is_clean(), "{refinement}");
    }
}
