//! Integration tests for the `bddcf` command-line tool (driven through the
//! built binary, like a user would).

use std::process::Command;

fn bddcf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bddcf"))
}

fn sample_pla() -> tempdir::TempPla {
    tempdir::TempPla::new(
        "\
.i 4
.o 2
.ilb a b c d
.ob s t
0-0- -1
0010 00
0011 00
0110 10
0111 11
1-0- 01
1010 10
1011 10
1110 -0
1111 -1
.e
",
    )
}

/// Minimal temp-file helper (no external crates).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempPla {
        pub path: PathBuf,
    }

    impl TempPla {
        pub fn new(content: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "bddcf-cli-test-{}-{}.pla",
                std::process::id(),
                content.len()
            ));
            std::fs::write(&path, content).expect("write temp pla");
            TempPla { path }
        }
    }

    impl Drop for TempPla {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[test]
fn help_prints_usage() {
    let out = bddcf().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("cascade"));
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let out = bddcf().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn stats_reports_all_treatments() {
    let pla = sample_pla();
    let out = bddcf().arg("stats").arg(&pla.path).output().expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ISF:"));
    assert!(text.contains("Alg 3.1:"));
    assert!(text.contains("Alg 3.3:"));
}

#[test]
fn reduce_writes_a_parseable_completion() {
    let pla = sample_pla();
    let out_path = std::env::temp_dir().join(format!("bddcf-out-{}.pla", std::process::id()));
    let out = bddcf()
        .args(["reduce"])
        .arg(&pla.path)
        .args(["--method", "fixpoint", "-o"])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("output written");
    let parsed = bddcf::io::parse_pla(&written).expect("self-written PLA parses");
    assert_eq!(parsed.num_inputs, 4);
    assert_eq!(parsed.num_outputs, 2);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn cascade_emits_verilog() {
    let pla = sample_pla();
    let v_path = std::env::temp_dir().join(format!("bddcf-v-{}.v", std::process::id()));
    let out = bddcf()
        .arg("cascade")
        .arg(&pla.path)
        .args(["--max-in", "4", "--max-out", "4", "--verilog"])
        .arg(&v_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cascade:"));
    let verilog = std::fs::read_to_string(&v_path).expect("verilog written");
    assert!(verilog.contains("module"));
    assert!(verilog.contains("endmodule"));
    let _ = std::fs::remove_file(&v_path);
}

#[test]
fn save_and_sim_roundtrip() {
    let pla = sample_pla();
    let cas_path = std::env::temp_dir().join(format!("bddcf-cas-{}.cas", std::process::id()));
    let out = bddcf()
        .arg("cascade")
        .arg(&pla.path)
        .args(["--max-in", "4", "--max-out", "4", "--save"])
        .arg(&cas_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Simulate a couple of inputs through the saved tables.
    for bits in ["0000", "1010", "1111"] {
        let out = bddcf()
            .arg("sim")
            .arg(&cas_path)
            .arg(bits)
            .output()
            .expect("spawn");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        let line = text.trim();
        assert_eq!(line.len(), 2, "two output bits, got {line:?}");
        assert!(line.chars().all(|c| c == '0' || c == '1'));
    }
    // Wrong arity is rejected.
    let out = bddcf()
        .arg("sim")
        .arg(&cas_path)
        .arg("01")
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&cas_path);
}

#[test]
fn conflicting_pla_is_rejected() {
    let pla = tempdir::TempPla::new(".i 2\n.o 1\n0- 1\n00 0\n.e\n");
    let out = bddcf().arg("stats").arg(&pla.path).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("driven both"), "stderr: {err}");
}

#[test]
fn lint_certifies_the_translation_chain_for_one_benchmark() {
    let out = bddcf().arg("lint").arg("3-nary").output().expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok"), "{text}");
    assert!(text.contains("artifact(s) analyzed"), "{text}");
    assert!(text.contains("round-trip"), "{text}");
}

#[test]
fn lint_rejects_unknown_selections() {
    let out = bddcf()
        .arg("lint")
        .arg("no-such-benchmark")
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

/// Budgeted runs degrade gracefully by default (exit 0) but exit with the
/// dedicated budget code 3 when `--require-complete` rejects a degraded
/// result — distinct from findings (1) and usage errors (2), so schedulers
/// can retry with a larger budget instead of flagging a bug.
#[test]
fn budget_exhaustion_exits_3_only_under_require_complete() {
    let pla = sample_pla();
    // Graceful default: a starved fixpoint reduction still exits 0.
    let out = bddcf()
        .arg("reduce")
        .arg(&pla.path)
        .args(["--method", "fixpoint", "--step-limit", "5"])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "degraded reduce must stay exit 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Opting into completeness turns the same degradation into exit 3.
    let out = bddcf()
        .arg("reduce")
        .arg(&pla.path)
        .args([
            "--method",
            "fixpoint",
            "--step-limit",
            "5",
            "--require-complete",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "budget exhaustion must exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exhausted"), "stderr: {err}");

    // Same convention on the synthesis path.
    let out = bddcf()
        .arg("cascade")
        .arg(&pla.path)
        .args(["--step-limit", "5"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "degraded cascade stays exit 0");
    let out = bddcf()
        .arg("cascade")
        .arg(&pla.path)
        .args(["--step-limit", "5", "--require-complete"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "cascade budget must exit 3");
}

/// End-to-end chaos smoke through the real binary: `bddcf loadtest` spawns
/// `bddcf serve` as a child process, SIGKILLs it mid-batch, restarts it on
/// the same spool, and must certify that no accepted request was lost.
#[test]
fn loadtest_survives_a_sigkill_of_the_child_daemon() {
    let dir = std::env::temp_dir().join(format!("bddcf-cli-loadtest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bddcf()
        .args([
            "loadtest",
            "--requests",
            "24",
            "--clients",
            "2",
            "--seed",
            "11",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {text}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("PASS"), "{text}");
    assert!(text.contains("1 kill(s)"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The verification subcommands follow one exit-code convention:
/// 0 = clean, 1 = the run completed and reported findings,
/// 2 = usage or internal error.
#[test]
fn exit_codes_distinguish_findings_from_usage_errors() {
    // 0: a clean check run.
    let out = bddcf()
        .args(["check", "3-nary", "--samples", "4", "--max-iter", "1"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "clean check must exit 0");

    // 1: the finding probe violates Definition 2.4, so the run completes
    // with findings.
    let out = bddcf()
        .args([
            "check",
            "no-such-benchmark-so-only-the-probe-runs",
            "--finding-probe",
            "--samples",
            "4",
            "--max-iter",
            "1",
        ])
        .output()
        .expect("spawn");
    // Selecting nothing is a usage error, so pair the probe with a real
    // benchmark instead.
    assert_eq!(out.status.code(), Some(2), "empty selection is usage");
    let out = bddcf()
        .args([
            "check",
            "3-nary",
            "--finding-probe",
            "--samples",
            "4",
            "--max-iter",
            "1",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Definition 2.4 violated"), "{text}");

    // 2: usage errors across the verification subcommands.
    for args in [
        vec!["check", "--no-such-flag"],
        vec!["lint", "--suite", "no-such-suite"],
        vec!["inject", "--no-such-flag"],
        vec!["crashtest", "--no-such-flag"],
        vec!["frobnicate"],
    ] {
        let out = bddcf().args(&args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "usage error for {args:?}");
    }
}
