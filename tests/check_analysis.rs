//! Integration tests for the `bddcf check` analysis: the four invariant
//! layers over registry benchmarks (clean pipelines pass, seeded
//! corruptions are caught, and the CLI exit status reflects the verdict).

use bddcf::bdd::manager::TestCorruption;
use bddcf::check::{
    check_benchmark, check_cf, check_manager, check_refinement, CheckOptions, Layer,
};
use bddcf::core::Cf;
use bddcf::funcs::small_benchmarks;
use bddcf::logic::TruthTable;
use std::process::Command;

fn bddcf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bddcf"))
}

#[test]
fn registry_benchmarks_pass_all_four_layers() {
    // Acceptance: `bddcf check` runs every layer on at least two registry
    // functions. The library entry point is exercised directly here; the
    // CLI wrapper is covered below.
    let options = CheckOptions {
        samples: 64,
        ..CheckOptions::default()
    };
    let mut checked = 0;
    for entry in small_benchmarks().into_iter().take(2) {
        let result = check_benchmark(entry.benchmark.as_ref(), &options);
        assert!(
            result.report.is_clean(),
            "{}: {}",
            entry.label,
            result.report
        );
        assert!(result.num_cascades >= 1, "{}: no cascade", entry.label);
        checked += 1;
    }
    assert_eq!(checked, 2);
}

#[test]
fn seeded_manager_corruption_is_caught() {
    let table = TruthTable::paper_table1();
    let mut cf = Cf::from_truth_table(&table);
    assert!(check_manager(cf.manager()).is_clean());
    cf.manager_mut()
        .corrupt_for_testing(TestCorruption::RedundantNode);
    let report = check_manager(cf.manager());
    assert!(!report.is_clean(), "redundant node must be flagged");
    assert!(report.findings().iter().all(|f| f.layer == Layer::Manager));
}

#[test]
fn seeded_cf_corruption_is_caught() {
    // Swap χ for an out-of-thin-air function (ȳ₁). It is a perfectly
    // well-formed characteristic function — the CF lints accept it — but
    // it does not refine the recorded specification, so the refinement
    // oracle must flag it.
    let table = TruthTable::paper_table1();
    let mut cf = Cf::from_truth_table(&table);
    assert!(check_cf(&mut cf).is_clean());
    assert!(check_refinement(&mut cf).is_clean());
    let broken = {
        let mgr = cf.manager_mut();
        let y0 = mgr.var(bddcf::bdd::Var(4));
        mgr.not(y0)
    };
    cf.set_root_for_testing(broken);
    let report = check_refinement(&mut cf);
    assert!(!report.is_clean(), "a non-refining root must be flagged");
    assert!(report
        .findings()
        .iter()
        .all(|f| f.layer == Layer::Refinement));
}

#[test]
#[should_panic(expected = "invariant check failed")]
fn assert_clean_panics_on_findings() {
    let table = TruthTable::paper_table1();
    let mut cf = Cf::from_truth_table(&table);
    cf.manager_mut()
        .corrupt_for_testing(TestCorruption::DanglingCacheEntry);
    check_manager(cf.manager()).assert_clean("seeded corruption");
}

#[test]
fn cli_check_exits_zero_on_clean_suite() {
    let output = bddcf()
        .args(["check", "--suite", "small", "--samples", "32", "3-nary"])
        .output()
        .expect("run bddcf check");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("pass every invariant layer"), "{stdout}");
}

#[test]
fn cli_check_exits_nonzero_on_no_match() {
    let output = bddcf()
        .args(["check", "no-such-benchmark"])
        .output()
        .expect("run bddcf check");
    assert!(!output.status.success());
}
